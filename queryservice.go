package closedrules

import (
	"context"
	"fmt"
	"strconv"
	"sync/atomic"

	"closedrules/internal/closedset"
	"closedrules/internal/rules"
)

// QueryService serves support, confidence and recommendation queries
// from a mined condensed representation (frequent closed itemsets +
// rule bases) to many concurrent callers — the long-lived serving
// counterpart of a one-shot Mine run. All methods are safe for
// concurrent use; Swap atomically replaces the underlying data (hot
// reload after a re-mine) without blocking in-flight queries.
//
// Recommendation rankings are memoized in a cache sharded across
// independently locked stripes, so concurrent Recommend calls for
// different baskets do not contend. The hit/miss/swap counters are
// exposed by Stats for serving-layer metrics (see the server package).
type QueryService struct {
	st atomic.Pointer[serviceState]

	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	swaps       atomic.Uint64
}

// BasisSelection names the exact/approximate basis pair a
// QueryService serves its Recommend rules from. Names resolve through
// the basis registry; an empty field selects the paper's default for
// that slot ("duquenne-guigues" exact, "luxenburger" approximate).
type BasisSelection struct {
	// Exact names the exact-rule basis ("duquenne-guigues" or
	// "generic"; "" selects the default).
	Exact string
	// Approximate names the approximate-rule basis ("luxenburger" or
	// "informative"; "" selects the default).
	Approximate string
}

// defaultBasisSelection is the paper's pair: Duquenne–Guigues exact
// rules plus the reduced Luxenburger basis.
var defaultBasisSelection = BasisSelection{Exact: "duquenne-guigues", Approximate: "luxenburger"}

// withDefaults fills empty slots with the paper's default pair.
func (b BasisSelection) withDefaults() BasisSelection {
	if b.Exact == "" {
		b.Exact = defaultBasisSelection.Exact
	}
	if b.Approximate == "" {
		b.Approximate = defaultBasisSelection.Approximate
	}
	return b
}

// serviceState is an immutable-after-build snapshot of everything the
// service answers from; Swap replaces it wholesale. Only the recCache
// stripes and the cache counters mutate after build.
type serviceState struct {
	numTx    int
	minConf  float64
	bases    BasisSelection // provenance of recRules (canonical names)
	res      *Result        // nil for collection-backed services
	fc       *closedset.Set
	recRules []Rule // basis rules (exact + approximate) for Recommend
	recCache *recCache

	// cacheHits and cacheMisses count Recommend cache outcomes against
	// THIS snapshot only; they are born zero at every Swap, so their
	// ratio describes how warm the cache serving right now actually is
	// (the QueryService-level counters accumulate across Swaps and
	// would conflate snapshots).
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
}

// ServiceStats is a point-in-time snapshot of a QueryService's
// operational counters. The CacheHits/CacheMisses pair accumulates
// across Swaps (the lifetime totals Prometheus counters want); the
// Snapshot* pair counts only lookups against the snapshot serving at
// the time of the Stats call, so its ratio describes the warmth of
// the cache answering requests right now.
type ServiceStats struct {
	// CacheHits counts Recommend calls answered from the cache, across
	// every snapshot served since the service was built.
	CacheHits uint64
	// CacheMisses counts Recommend calls that computed a fresh ranking,
	// across every snapshot served since the service was built.
	CacheMisses uint64
	// Swaps counts successful hot reloads.
	Swaps uint64
	// CacheEntries is the number of rankings currently cached.
	CacheEntries int
	// SnapshotCacheHits counts cache hits against the current snapshot
	// only; it resets to zero at every Swap.
	SnapshotCacheHits uint64
	// SnapshotCacheMisses counts cache misses against the current
	// snapshot only; it resets to zero at every Swap.
	SnapshotCacheMisses uint64
}

// SnapshotHitRatio is SnapshotCacheHits over all lookups against the
// current snapshot, or 0 before the snapshot's first lookup.
func (s ServiceStats) SnapshotHitRatio() float64 {
	total := s.SnapshotCacheHits + s.SnapshotCacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.SnapshotCacheHits) / float64(total)
}

// NewQueryService builds a service from a mining result, serving the
// paper's default basis pair (Duquenne–Guigues + reduced Luxenburger).
// minConf filters the approximate basis rules served by Recommend;
// Support and Confidence are unaffected by it (they derive exact
// measures from the closed itemsets).
func NewQueryService(res *Result, minConf float64) (*QueryService, error) {
	return NewQueryServiceWithBases(res, minConf, BasisSelection{})
}

// NewQueryServiceWithBases is NewQueryService with an explicit basis
// pair: Recommend serves the rules of the named exact and approximate
// bases instead of the defaults. Generator-based bases ("generic",
// "informative") require a generator-tracking miner.
func NewQueryServiceWithBases(res *Result, minConf float64, sel BasisSelection) (*QueryService, error) {
	st, err := stateFromResult(res, minConf, sel)
	if err != nil {
		return nil, err
	}
	qs := &QueryService{}
	qs.st.Store(st)
	return qs, nil
}

// NewQueryServiceFromCollection builds a service from a detached
// closed-itemset collection (the "mine once, serve later" workflow).
// Exact rules come from the generic basis when the collection carries
// generators; otherwise Recommend serves approximate rules only.
func NewQueryServiceFromCollection(col *ClosedCollection, minConf float64) (*QueryService, error) {
	st, err := stateFromCollection(col, minConf)
	if err != nil {
		return nil, err
	}
	qs := &QueryService{}
	qs.st.Store(st)
	return qs, nil
}

func stateFromResult(res *Result, minConf float64, sel BasisSelection) (*serviceState, error) {
	if res == nil {
		return nil, fmt.Errorf("closedrules: nil Result")
	}
	if !(minConf >= 0 && minConf <= 1) { // negated AND also rejects NaN
		return nil, fmt.Errorf("closedrules: minConf %v outside [0,1]", minConf)
	}
	sel = sel.withDefaults()
	ctx := context.Background()
	exact, err := res.Basis(ctx, sel.Exact)
	if err != nil {
		return nil, err
	}
	approx, err := res.Basis(ctx, sel.Approximate, WithMinConfidence(minConf))
	if err != nil {
		return nil, err
	}
	recRules := make([]Rule, 0, exact.Len()+approx.Len())
	recRules = append(recRules, exact.Rules...)
	recRules = append(recRules, approx.Rules...)
	return &serviceState{
		numTx:    res.Dataset().NumTransactions(),
		minConf:  minConf,
		bases:    BasisSelection{Exact: exact.Basis, Approximate: approx.Basis},
		res:      res,
		fc:       res.fc,
		recRules: recRules,
		recCache: newRecCache(),
	}, nil
}

func stateFromCollection(col *ClosedCollection, minConf float64) (*serviceState, error) {
	if col == nil {
		return nil, fmt.Errorf("closedrules: nil ClosedCollection")
	}
	if !(minConf >= 0 && minConf <= 1) { // negated AND also rejects NaN
		return nil, fmt.Errorf("closedrules: minConf %v outside [0,1]", minConf)
	}
	var recRules []Rule
	bases := BasisSelection{Approximate: "luxenburger"}
	if len(col.set.AllGenerators()) > 0 {
		exact, err := col.GenericBasis()
		if err != nil {
			return nil, err
		}
		recRules = append(recRules, exact...)
		bases.Exact = "generic"
	}
	approx, err := col.LuxenburgerReduction(minConf)
	if err != nil {
		return nil, err
	}
	recRules = append(recRules, approx...)
	return &serviceState{
		numTx:    col.NumTransactions(),
		minConf:  minConf,
		bases:    bases,
		fc:       col.set,
		recRules: recRules,
		recCache: newRecCache(),
	}, nil
}

// Swap atomically replaces the served data with a freshly mined
// result, keeping the service's confidence threshold and basis
// selection. In-flight queries finish against the old snapshot; new
// queries see the new one. The expensive basis construction happens
// before the pointer is published, so queries are never blocked on a
// re-mine. The recommendation cache starts empty in the new snapshot.
func (qs *QueryService) Swap(res *Result) error {
	cur := qs.st.Load()
	st, err := stateFromResult(res, cur.minConf, cur.bases)
	if err != nil {
		return err
	}
	qs.st.Store(st)
	qs.swaps.Add(1)
	return nil
}

// Stats returns a snapshot of the service's operational counters.
func (qs *QueryService) Stats() ServiceStats {
	st := qs.st.Load()
	return ServiceStats{
		CacheHits:           qs.cacheHits.Load(),
		CacheMisses:         qs.cacheMisses.Load(),
		Swaps:               qs.swaps.Load(),
		CacheEntries:        st.recCache.entries(),
		SnapshotCacheHits:   st.cacheHits.Load(),
		SnapshotCacheMisses: st.cacheMisses.Load(),
	}
}

// Swaps returns the number of successful hot reloads — a single
// atomic load, cheaper than Stats, which also counts cache entries
// across every stripe. Suited to hot paths like liveness probes.
func (qs *QueryService) Swaps() uint64 { return qs.swaps.Load() }

// Per-entry overheads of the MemoryEstimate model, in bytes. They
// stand in for Go runtime costs the library cannot observe directly:
// slice headers, map buckets, interned key strings.
const (
	estPerTransaction = 24  // slice header + allocator slack per transaction
	estPerClosed      = 96  // Closed struct + map entry + interned key
	estPerGenerator   = 24  // slice header per recorded generator
	estPerRule        = 112 // Rule struct + two itemset headers
	estPerCacheEntry  = 256 // cache key + ranking slice + stripe entry
	estPerItem        = 8   // one int item
)

// MemoryEstimate approximates the resident bytes of the currently
// served snapshot: the dataset's transactions, the frequent closed
// itemsets with their generators, the basis rules behind Recommend,
// and the recommendation cache. It is a model, not an accounting — Go
// gives no per-object sizes — but it is monotone in the quantities
// that actually dominate a snapshot's footprint, which is what a
// serving layer needs to budget many resident services against each
// other (see internal/tenant). The lazily built structures a Result
// may grow later (the full frequent family, the lattice) are not
// counted.
func (qs *QueryService) MemoryEstimate() int64 {
	st := qs.st.Load()
	var b int64
	if st.res != nil {
		d := st.res.Dataset()
		for _, tx := range d.Transactions() {
			b += int64(tx.Len())*estPerItem + estPerTransaction
		}
		for _, name := range d.Names() {
			b += int64(len(name)) + 16
		}
	}
	st.fc.Each(func(c closedset.Closed) bool {
		b += int64(c.Items.Len())*2*estPerItem + estPerClosed // items + interned key
		for _, g := range c.Generators {
			b += int64(g.Len())*estPerItem + estPerGenerator
		}
		return true
	})
	for _, r := range st.recRules {
		b += int64(r.Antecedent.Len()+r.Consequent.Len())*estPerItem + estPerRule
	}
	b += int64(st.recCache.entries()) * estPerCacheEntry
	return b
}

// NumTransactions returns |O| of the currently served dataset.
func (qs *QueryService) NumTransactions() int {
	return qs.st.Load().numTx
}

// MinConfidence returns the confidence threshold of the served
// approximate basis.
func (qs *QueryService) MinConfidence() float64 {
	return qs.st.Load().minConf
}

// ServedResult returns the mining Result backing the current snapshot,
// or nil for a collection-backed service. It is the anchor of the
// incremental refresh path: UpdateAppend extends the served result with
// an appended batch, and Swap installs its replacement. The result is
// shared with the serving path — treat it as read-only.
func (qs *QueryService) ServedResult() *Result {
	return qs.st.Load().res
}

// ServedBases returns the basis pair the current snapshot serves
// Recommend from. For a collection-backed service without generators
// the Exact slot is empty (no exact basis is derivable).
func (qs *QueryService) ServedBases() BasisSelection {
	return qs.st.Load().bases
}

// BasisRules constructs the named basis from the snapshot currently
// being served, at the given confidence threshold — the query-side
// door to every registered basis (the HTTP layer's /rules?basis=).
// It requires a result-backed service (NewQueryService or Swap); a
// collection-backed snapshot cannot build arbitrary bases and errors.
// Outputs are memoized on the snapshot's Result, so repeated requests
// for one basis are cheap; callers must not mutate the returned rules.
func (qs *QueryService) BasisRules(ctx context.Context, name string, minConf float64) (*RuleSet, error) {
	rs, _, err := qs.BasisRulesWithN(ctx, name, minConf)
	return rs, err
}

// BasisRulesWithN is BasisRules plus the transaction count of the
// snapshot that answered (see RuleWithN).
func (qs *QueryService) BasisRulesWithN(ctx context.Context, name string, minConf float64) (*RuleSet, int, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	st := qs.st.Load()
	if st.res == nil {
		return nil, 0, fmt.Errorf("closedrules: basis construction needs the mining result; this service was built from a detached collection")
	}
	rs, err := st.res.Basis(ctx, name, WithMinConfidence(minConf))
	if err != nil {
		return nil, 0, err
	}
	return rs, st.numTx, nil
}

// NumRules returns the number of basis rules available to Recommend.
func (qs *QueryService) NumRules() int {
	return len(qs.st.Load().recRules)
}

// Support answers supp(X) = supp(h(X)) from the closed itemsets; ok is
// false when X is not frequent at the mining threshold.
func (qs *QueryService) Support(ctx context.Context, x Itemset) (support int, ok bool, err error) {
	if err := ctx.Err(); err != nil {
		return 0, false, err
	}
	s, ok := qs.st.Load().fc.SupportOf(x)
	return s, ok, nil
}

// Confidence measures the rule A → C as supp(h(A∪C)) / supp(h(A)) —
// the paper's derivation — and errors when either support is not
// derivable (the rule involves an infrequent itemset) or the sides
// overlap.
func (qs *QueryService) Confidence(ctx context.Context, antecedent, consequent Itemset) (float64, error) {
	r, err := qs.Rule(ctx, antecedent, consequent)
	if err != nil {
		return 0, err
	}
	return r.Confidence(), nil
}

// Rule reconstructs the fully measured rule A → C (support, antecedent
// support, and consequent support when derivable) from the condensed
// representation.
func (qs *QueryService) Rule(ctx context.Context, antecedent, consequent Itemset) (Rule, error) {
	r, _, err := qs.RuleWithN(ctx, antecedent, consequent)
	return r, err
}

// RuleWithN is Rule plus the transaction count of the snapshot that
// answered — the right denominator for measures derived from the rule
// (lift, relative support) when a Swap may land mid-request; reading
// NumTransactions separately could observe a different snapshot.
func (qs *QueryService) RuleWithN(ctx context.Context, antecedent, consequent Itemset) (Rule, int, error) {
	if err := ctx.Err(); err != nil {
		return Rule{}, 0, err
	}
	st := qs.st.Load()
	r, err := ruleFrom(st, antecedent, consequent)
	return r, st.numTx, err
}

// ruleFrom reconstructs the measured rule from one snapshot.
func ruleFrom(st *serviceState, antecedent, consequent Itemset) (Rule, error) {
	if antecedent.Intersect(consequent).Len() > 0 {
		return Rule{}, fmt.Errorf("closedrules: antecedent and consequent overlap")
	}
	u := antecedent.Union(consequent)
	supU, ok := st.fc.SupportOf(u)
	if !ok {
		return Rule{}, fmt.Errorf("closedrules: support of %v not derivable (not frequent at the mining threshold)", u)
	}
	supA, ok := st.fc.SupportOf(antecedent)
	if !ok {
		return Rule{}, fmt.Errorf("closedrules: support of %v not derivable (not frequent at the mining threshold)", antecedent)
	}
	r := Rule{
		Antecedent:        antecedent,
		Consequent:        consequent,
		Support:           supU,
		AntecedentSupport: supA,
	}
	if supC, ok := st.fc.SupportOf(consequent); ok {
		r.ConsequentSupport = supC
	}
	return r, nil
}

// Recommend returns up to k basis rules applicable to the observed
// itemset — antecedent covered by the observation, consequent not
// already fully observed — ranked by descending lift. Results are
// cached per (observation, k) until the next Swap.
func (qs *QueryService) Recommend(ctx context.Context, observed Itemset, k int) ([]Rule, error) {
	recs, _, err := qs.RecommendWithN(ctx, observed, k)
	return recs, err
}

// RecommendWithN is Recommend plus the transaction count of the
// snapshot that answered (see RuleWithN).
func (qs *QueryService) RecommendWithN(ctx context.Context, observed Itemset, k int) ([]Rule, int, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	if k <= 0 {
		return nil, 0, fmt.Errorf("closedrules: Recommend k %d < 1", k)
	}
	st := qs.st.Load()
	return qs.recommendFrom(st, observed, k), st.numTx, nil
}

// recommendFrom answers one recommendation from one pinned snapshot,
// through its cache. The returned slice is the caller's to keep.
func (qs *QueryService) recommendFrom(st *serviceState, observed Itemset, k int) []Rule {
	key := observed.Key() + "#" + strconv.Itoa(k)
	if cached, hit := st.recCache.get(key); hit {
		qs.cacheHits.Add(1)
		st.cacheHits.Add(1)
		// Hand out a copy: a caller re-sorting its result must not
		// corrupt the ranking served to the next cache hit.
		return append([]Rule(nil), cached...)
	}
	qs.cacheMisses.Add(1)
	st.cacheMisses.Add(1)

	applicable := rules.WithAntecedentSubsetOf(st.recRules, observed)
	novel := rules.Filter(applicable, func(r Rule) bool {
		return !observed.ContainsAll(r.Consequent)
	})
	top := rules.TopBy(novel, k, rules.ByLift(st.numTx))

	// The state may have been swapped while we computed; caching into
	// the old snapshot's stripes is still correct (they are keyed to
	// that snapshot and become garbage with it).
	st.recCache.put(key, top)
	return append([]Rule(nil), top...)
}

// RecommendRequest is one item of a batched recommendation read (see
// RecommendBatch): the observed basket and the ranking size k, the
// same parameters Recommend takes.
type RecommendRequest struct {
	Observed Itemset
	K        int
}

// RecommendBatchResult is one item's answer from RecommendBatch:
// either a ranking or that item's validation error.
type RecommendBatchResult struct {
	Rules []Rule
	Err   error
}

// RecommendBatch answers many recommendation requests from a single
// snapshot load — the batch-aware read the serving layer's request
// coalescer flushes into. Every request in the batch is answered from
// the same snapshot (one atomic pointer load for the whole batch, and
// one consistent numTx for lift), and requests sharing an (observed,
// k) key within the batch are computed once. A request with an
// invalid k fails individually through its RecommendBatchResult.Err;
// only a context error fails the whole batch. Returned slices are the
// caller's to keep.
func (qs *QueryService) RecommendBatch(ctx context.Context, reqs []RecommendRequest) ([]RecommendBatchResult, int, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	st := qs.st.Load()
	out := make([]RecommendBatchResult, len(reqs))
	// computed memoizes this batch's rankings by key so duplicates hit
	// at most the snapshot cache once and the rule walk never repeats.
	computed := make(map[string][]Rule, len(reqs))
	for i, req := range reqs {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		if req.K <= 0 {
			out[i].Err = fmt.Errorf("closedrules: Recommend k %d < 1", req.K)
			continue
		}
		key := req.Observed.Key() + "#" + strconv.Itoa(req.K)
		if prev, ok := computed[key]; ok {
			out[i].Rules = append([]Rule(nil), prev...)
			continue
		}
		recs := qs.recommendFrom(st, req.Observed, req.K)
		computed[key] = recs
		out[i].Rules = recs
	}
	return out, st.numTx, nil
}
