package closedrules

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"testing"
)

func TestRecCachePutGet(t *testing.T) {
	c := newRecCache()
	want := []Rule{{Antecedent: Items(1), Consequent: Items(4), Support: 4, AntecedentSupport: 4}}
	c.put("k1", want)
	got, ok := c.get("k1")
	if !ok || len(got) != 1 || got[0].Key() != want[0].Key() {
		t.Fatalf("get = %v, %v", got, ok)
	}
	if _, ok := c.get("absent"); ok {
		t.Error("hit on absent key")
	}
	if c.entries() != 1 {
		t.Errorf("entries = %d, want 1", c.entries())
	}
}

func TestRecCacheShardReset(t *testing.T) {
	c := newRecCache()
	// Overfill the whole cache; each stripe must stay bounded because a
	// full stripe resets instead of growing.
	total := recCacheShards * recShardLimit * 2
	for i := 0; i < total; i++ {
		c.put("key-"+strconv.Itoa(i), nil)
	}
	if got, max := c.entries(), recCacheShards*recShardLimit; got > max {
		t.Errorf("entries = %d, want ≤ %d", got, max)
	}
	for i := range c.shards {
		if n := len(c.shards[i].m); n > recShardLimit {
			t.Errorf("shard %d holds %d entries, want ≤ %d", i, n, recShardLimit)
		}
	}
}

func TestRecCacheShardSpread(t *testing.T) {
	// Distinct basket keys must land on more than one stripe, otherwise
	// the striping buys nothing.
	used := map[int]bool{}
	for i := 0; i < 256; i++ {
		used[shardIndex(Items(i).Key()+"#3")] = true
	}
	if len(used) < recCacheShards/2 {
		t.Errorf("256 keys landed on only %d/%d shards", len(used), recCacheShards)
	}
}

func TestRecCacheConcurrent(t *testing.T) {
	c := newRecCache()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				key := "k" + strconv.Itoa((g*7+i)%500)
				if i%3 == 0 {
					c.put(key, nil)
				} else {
					c.get(key)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestQueryServiceStats(t *testing.T) {
	qs := classicService(t)
	ctx := context.Background()
	if s := qs.Stats(); s.CacheHits != 0 || s.CacheMisses != 0 || s.Swaps != 0 || s.CacheEntries != 0 {
		t.Fatalf("fresh stats = %+v", s)
	}
	if _, err := qs.Recommend(ctx, Items(1), 3); err != nil {
		t.Fatal(err)
	}
	if _, err := qs.Recommend(ctx, Items(1), 3); err != nil {
		t.Fatal(err)
	}
	s := qs.Stats()
	if s.CacheMisses != 1 || s.CacheHits != 1 || s.CacheEntries != 1 {
		t.Errorf("stats after hit+miss = %+v", s)
	}

	// A swap starts a fresh cache but keeps the counters.
	res, err := MineContext(ctx, classic(t), WithMinSupport(0.4))
	if err != nil {
		t.Fatal(err)
	}
	if err := qs.Swap(res); err != nil {
		t.Fatal(err)
	}
	s = qs.Stats()
	if s.Swaps != 1 || s.CacheEntries != 0 || s.CacheHits != 1 {
		t.Errorf("stats after swap = %+v", s)
	}
	if _, err := qs.Recommend(ctx, Items(1), 3); err != nil {
		t.Fatal(err)
	}
	if s := qs.Stats(); s.CacheMisses != 2 {
		t.Errorf("recommend after swap should miss: %+v", s)
	}
}

// TestRecommendManyBasketsConcurrent drives distinct (basket, k) keys
// from 8 goroutines so different stripes fill concurrently — with
// -race this is the sharded-cache proof at the library level.
func TestRecommendManyBasketsConcurrent(t *testing.T) {
	qs := classicService(t)
	ctx := context.Background()
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				obs := Items(i%5, (i+g)%5)
				if _, err := qs.Recommend(ctx, obs, 1+i%4); err != nil {
					errc <- fmt.Errorf("Recommend(%v): %w", obs, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	s := qs.Stats()
	if s.CacheHits == 0 || s.CacheMisses == 0 {
		t.Errorf("hammer produced no cache traffic: %+v", s)
	}
}
