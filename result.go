package closedrules

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"sync"

	"closedrules/internal/apriori"
	"closedrules/internal/basis"
	"closedrules/internal/closedset"
	"closedrules/internal/core"
	"closedrules/internal/genclose"
	"closedrules/internal/itemset"
	"closedrules/internal/lattice"
	"closedrules/internal/rules"
)

// Result holds the outcome of a closed-itemset mining run. Frequent
// itemsets, the iceberg lattice, rules and bases are derived lazily on
// first use and cached. Result is safe for concurrent use.
type Result struct {
	d         *Dataset
	minSup    int
	minerName string
	hasGens   bool
	fc        *closedset.Set

	famOnce sync.Once
	fam     *itemset.Family // lazily mined (Apriori)
	famErr  error
	latOnce sync.Once
	lat     *lattice.Lattice // lazily built

	// genMu/genFC memoize the WithGeneratorResolution re-mine: the FC
	// with minimal generators attached, produced by one genclose run
	// over the same dataset and threshold. Errors (e.g. cancellation)
	// are not cached, so a failed resolution can be retried.
	genMu sync.Mutex
	genFC *closedset.Set

	// basisCache memoizes Basis outputs per (basis, thresholds) so a
	// serving layer can re-request the same basis without re-walking
	// the lattice. Values are *RuleSet; keys come from basisCacheKey.
	basisCache sync.Map
}

// Dataset returns the mined dataset.
func (r *Result) Dataset() *Dataset { return r.d }

// MinSupport returns the absolute minimum support count used.
func (r *Result) MinSupport() int { return r.minSup }

// MinerName returns the registry name of the closed-itemset miner that
// produced the result.
func (r *Result) MinerName() string { return r.minerName }

// TracksGenerators reports whether the producing miner recorded the
// minimal generators of each closed itemset (required by the generic
// and informative bases).
func (r *Result) TracksGenerators() bool { return r.hasGens }

// HasGenerators reports whether the result's closed itemsets carry
// their minimal generators — true for generator-tracking miners
// (close, a-close, titanic, genclose/pgenclose). Generator-requiring
// bases on a generator-less result either fail with an explicit error
// or, with WithGeneratorResolution, re-mine via genclose.
func (r *Result) HasGenerators() bool { return r.hasGens }

// ClosedItemsets returns the frequent closed itemsets (FC), including
// the bottom h(∅), in canonical order.
func (r *Result) ClosedItemsets() []ClosedItemset { return r.fc.All() }

// NumClosed returns |FC|.
func (r *Result) NumClosed() int { return r.fc.Len() }

// MaximalItemsets returns the maximal frequent (closed) itemsets.
func (r *Result) MaximalItemsets() []ClosedItemset { return r.fc.Maximal() }

// Closure returns h(X), the smallest frequent closed itemset
// containing X; ok is false when X is not frequent.
func (r *Result) Closure(x Itemset) (ClosedItemset, bool) { return r.fc.ClosureOf(x) }

// Support returns supp(X) = supp(h(X)); ok is false when X is not
// frequent.
func (r *Result) Support(x Itemset) (int, bool) { return r.fc.SupportOf(x) }

func (r *Result) family() (*itemset.Family, error) {
	r.famOnce.Do(func() {
		r.fam, _, r.famErr = apriori.Mine(r.d, r.minSup)
	})
	return r.fam, r.famErr
}

func (r *Result) latticeOf() *lattice.Lattice {
	r.latOnce.Do(func() {
		r.lat = lattice.Build(r.fc)
	})
	return r.lat
}

// FrequentItemsets returns all frequent itemsets (mined lazily with
// Apriori at the Result's threshold). The paper's §2 guarantees these
// are recoverable from FC; this method exists for comparisons and for
// basis construction.
func (r *Result) FrequentItemsets() ([]CountedItemset, error) {
	fam, err := r.family()
	if err != nil {
		return nil, err
	}
	return fam.All(), nil
}

// AllRules generates the complete set of valid association rules at
// the given confidence threshold — the redundant set the bases
// compress.
func (r *Result) AllRules(minConf float64) ([]Rule, error) {
	fam, err := r.family()
	if err != nil {
		return nil, err
	}
	return rules.Generate(fam, minConf)
}

// LatticeDOT renders the iceberg lattice in Graphviz format.
func (r *Result) LatticeDOT() string {
	return r.latticeOf().DOT(r.d.Names())
}

// LatticeEdges returns the Hasse edges of the iceberg lattice as
// (lower, upper) pairs of closed itemsets.
func (r *Result) LatticeEdges() [][2]ClosedItemset {
	lat := r.latticeOf()
	var out [][2]ClosedItemset
	for _, e := range lat.Edges() {
		out = append(out, [2]ClosedItemset{lat.Nodes[e[0]], lat.Nodes[e[1]]})
	}
	return out
}

// resolveGenerators re-mines the dataset with genclose — the one-pass
// closed-sets-plus-generators miner — at the result's threshold, and
// memoizes the resolved family. It backs WithGeneratorResolution;
// because genclose's closed sets and supports are byte-identical to
// any other closed miner's, the resolved FC differs from r.fc only in
// carrying generators.
func (r *Result) resolveGenerators(ctx context.Context) (*closedset.Set, error) {
	r.genMu.Lock()
	cached := r.genFC
	r.genMu.Unlock()
	if cached != nil {
		return cached, nil
	}
	// Mine outside the lock; concurrent resolvers may race the re-mine,
	// but every run produces the identical family, so first-publish-wins
	// is safe.
	fc, err := genclose.MineContext(ctx, r.d, r.minSup)
	if err != nil {
		return nil, err
	}
	r.genMu.Lock()
	if r.genFC == nil {
		r.genFC = fc
	}
	fc = r.genFC
	r.genMu.Unlock()
	return fc, nil
}

// buildInput assembles the registry-facing view of this result with
// the given construction options.
func (r *Result) buildInput(cfg basisConfig) basis.BuildInput {
	in := basis.BuildInput{
		NumTx:                  r.d.NumTransactions(),
		FC:                     r.fc,
		HasGenerators:          r.hasGens,
		MinerName:              r.minerName,
		MinConfidence:          cfg.minConf,
		Reduced:                cfg.reduced,
		IncludeEmptyAntecedent: cfg.includeEmpty,
		Lattice:                r.latticeOf,
		Family:                 r.family,
	}
	if cfg.genResolve && !r.hasGens {
		in.ResolveGenerators = r.resolveGenerators
	}
	return in
}

// basisCacheKey is the memoization key for one unfiltered Basis
// configuration. The confidence threshold is deliberately absent: only
// threshold-0 builds are cached, so the key space is bounded by
// (basis, variant) and a client sweeping minconf values cannot grow
// the cache.
func basisCacheKey(name string, cfg basisConfig) string {
	return basis.Canonical(name) + "|" +
		strconv.FormatBool(cfg.reduced) + "|" +
		strconv.FormatBool(cfg.includeEmpty) + "|" +
		strconv.FormatBool(cfg.genResolve)
}

// Basis constructs the named rule basis from this result — the one way
// to obtain any basis, built-in or registered via RegisterBasis. The
// name is resolved through the basis registry (matching ignores case,
// hyphens and underscores; Bases lists what is registered), thresholds
// come from the options (WithMinConfidence, WithReduction), and the
// returned RuleSet carries the provenance: basis name, thresholds and
// rules. The unfiltered construction is memoized per (basis, variant)
// on the Result and the confidence threshold applied as a cheap
// per-rule filter on each call, so serving layers can re-request a
// basis at any threshold for near-free; callers must not mutate the
// returned rules.
func (r *Result) Basis(ctx context.Context, name string, opts ...BasisOption) (*RuleSet, error) {
	cfg, err := buildBasisConfig(opts)
	if err != nil {
		return nil, err
	}
	return r.basisWith(ctx, name, cfg)
}

// basisWith is Basis after option resolution; internal callers (the
// derivation engine, the legacy wrappers) use it to reach the
// IncludeEmptyAntecedent variants the exported options do not expose.
// Only the unfiltered (threshold-0) construction is built and cached;
// the requested confidence threshold is applied as a per-rule filter
// on the way out, per the Builder contract. This keeps the cache key
// space bounded by (basis, variant) no matter how many distinct
// thresholds callers — including HTTP clients via /rules?basis= —
// request.
func (r *Result) basisWith(ctx context.Context, name string, cfg basisConfig) (*RuleSet, error) {
	base := cfg
	base.minConf = 0
	key := basisCacheKey(name, base)
	cached, ok := r.basisCache.Load(key)
	if !ok {
		rs, err := basis.Build(ctx, name, r.buildInput(base))
		if err != nil {
			return nil, err
		}
		cached, _ = r.basisCache.LoadOrStore(key, &rs)
	}
	full := cached.(*RuleSet)
	if cfg.minConf == 0 {
		return full, nil
	}
	filtered := *full
	filtered.MinConfidence = cfg.minConf
	filtered.Rules = rules.MinConfidence(full.Rules, cfg.minConf)
	return &filtered, nil
}

// BasisPair holds the paper's two bases: Exact is the Duquenne–Guigues
// basis (Theorem 1) and Approximate the transitive reduction of the
// Luxenburger basis at the chosen confidence (Theorem 2). Together
// they are a minimal non-redundant generating set for all valid rules.
type BasisPair struct {
	// Exact is the Duquenne–Guigues basis (confidence-1 rules).
	Exact []Rule
	// Approximate is the reduced Luxenburger basis at the requested
	// confidence.
	Approximate []Rule

	numTx int
	// unfiltered copies retained so the derivation engine sees the
	// complete diagram regardless of display thresholds.
	dgAll  []Rule
	luxAll []Rule
}

// Bases computes both of the paper's bases. minConf filters the
// approximate basis; exact rules always have confidence 1. Rules with
// an empty antecedent (possible only for the exact rule ∅ → h(∅) and
// approximate rules out of an empty bottom) are excluded from the
// exported lists but kept internally for derivation.
//
// Deprecated: use Basis(ctx, "duquenne-guigues") and Basis(ctx,
// "luxenburger", WithMinConfidence(minConf)), which resolve through
// the basis registry and carry provenance.
func (r *Result) Bases(minConf float64) (*BasisPair, error) {
	if !(minConf >= 0 && minConf <= 1) { // negated AND also rejects NaN
		return nil, fmt.Errorf("closedrules: minConfidence %v outside [0,1]", minConf)
	}
	ctx := context.Background()
	dg, err := r.basisWith(ctx, "duquenne-guigues", basisConfig{reduced: true, includeEmpty: true})
	if err != nil {
		return nil, err
	}
	// One lattice walk builds the unfiltered diagram; the displayed
	// basis is filtered from it in-process rather than re-walked.
	lux, err := r.basisWith(ctx, "luxenburger", basisConfig{reduced: true, includeEmpty: true})
	if err != nil {
		return nil, err
	}
	approximate := rules.Filter(lux.Rules, func(ru Rule) bool {
		return ru.Antecedent.Len() > 0 && ru.Confidence() >= minConf
	})
	return &BasisPair{
		Exact:       core.DropEmptyAntecedent(dg.Rules),
		Approximate: approximate,
		numTx:       r.d.NumTransactions(),
		dgAll:       dg.Rules,
		luxAll:      lux.Rules,
	}, nil
}

// LuxenburgerFull returns the unreduced Luxenburger basis: one rule
// per comparable pair of frequent closed itemsets.
//
// Deprecated: use Basis(ctx, "luxenburger", WithMinConfidence(minConf),
// WithReduction(false)).
func (r *Result) LuxenburgerFull(minConf float64) ([]Rule, error) {
	rs, err := r.Basis(context.Background(), "luxenburger",
		WithMinConfidence(minConf), WithReduction(false))
	if err != nil {
		return nil, err
	}
	return rs.Rules, nil
}

// GenericBasis returns the generic basis for exact rules (minimal-
// generator antecedents), the follow-on refinement of the same
// authors. Requires a generator-tracking miner (close, a-close,
// titanic).
//
// Deprecated: use Basis(ctx, "generic").
func (r *Result) GenericBasis() ([]Rule, error) {
	rs, err := r.Basis(context.Background(), "generic")
	if err != nil {
		return nil, err
	}
	return rs.Rules, nil
}

// InformativeBasis returns the informative basis for approximate rules
// (minimal-generator antecedents, closed-itemset consequents); reduced
// restricts consequents to lattice covers.
//
// Deprecated: use Basis(ctx, "informative", WithMinConfidence(minConf),
// WithReduction(reduced)).
func (r *Result) InformativeBasis(minConf float64, reduced bool) ([]Rule, error) {
	rs, err := r.Basis(context.Background(), "informative",
		WithMinConfidence(minConf), WithReduction(reduced))
	if err != nil {
		return nil, err
	}
	return rs.Rules, nil
}

// PseudoClosedItemsets returns the frequent pseudo-closed itemsets —
// the antecedents of the Duquenne–Guigues basis.
func (r *Result) PseudoClosedItemsets() ([]CountedItemset, error) {
	fam, err := r.family()
	if err != nil {
		return nil, err
	}
	ps, err := core.PseudoClosedSets(r.d.NumTransactions(), fam, r.fc)
	if err != nil {
		return nil, err
	}
	out := make([]CountedItemset, len(ps))
	for i, p := range ps {
		out[i] = CountedItemset{Items: p.Items, Support: p.Support}
	}
	return out, nil
}

// Engine is the derivation engine of the paper's theorems: it answers
// support, confidence and validity queries for arbitrary rules using
// only the two bases.
type Engine = core.Engine

// Engine builds a derivation engine from the bases.
func (b *BasisPair) Engine() (*Engine, error) {
	return core.NewEngine(b.numTx, b.dgAll, b.luxAll)
}

// Size returns |Exact| + |Approximate|.
func (b *BasisPair) Size() int { return len(b.Exact) + len(b.Approximate) }

// NewEngine builds a derivation engine from an exact and an
// approximate rule set, the registry-era counterpart of
// BasisPair.Engine. For complete derivability the sets must be
// unfiltered (confidence 0) and the exact set a Duquenne–Guigues
// basis; Result.DerivationEngine assembles exactly that.
func NewEngine(numTx int, exact, approximate *RuleSet) (*Engine, error) {
	if exact == nil || approximate == nil {
		return nil, fmt.Errorf("closedrules: NewEngine with nil rule set")
	}
	return core.NewEngine(numTx, exact.Rules, approximate.Rules)
}

// DerivationEngine builds the derivation engine from the unfiltered
// Duquenne–Guigues and reduced Luxenburger bases of this result — the
// complete condensed representation of Theorems 1 and 2.
func (r *Result) DerivationEngine(ctx context.Context) (*Engine, error) {
	dg, err := r.basisWith(ctx, "duquenne-guigues", basisConfig{reduced: true, includeEmpty: true})
	if err != nil {
		return nil, err
	}
	lux, err := r.basisWith(ctx, "luxenburger", basisConfig{reduced: true, includeEmpty: true})
	if err != nil {
		return nil, err
	}
	return NewEngine(r.d.NumTransactions(), dg, lux)
}

// DeriveAllRules regenerates the complete set of valid rules at the
// given confidence from the condensed representation alone (closed
// itemsets + bases) — the database is not consulted. It must return
// exactly what AllRules measures; the test suite asserts this.
func (r *Result) DeriveAllRules(minConf float64) ([]Rule, error) {
	eng, err := r.DerivationEngine(context.Background())
	if err != nil {
		return nil, err
	}
	return core.DeriveAllRules(eng, r.fc, minConf, 25)
}

// SaveClosedItemsets writes the frequent closed itemsets (with their
// generators) in the library's stable text format, so a mined FC can
// be stored and re-analyzed without re-mining.
func (r *Result) SaveClosedItemsets(w io.Writer) error {
	return closedset.Write(w, r.fc)
}

// LoadClosedItemsets reads a collection written by SaveClosedItemsets.
func LoadClosedItemsets(rd io.Reader) ([]ClosedItemset, error) {
	s, err := closedset.Read(rd)
	if err != nil {
		return nil, err
	}
	return s.All(), nil
}
