package closedrules

import (
	"fmt"
	"io"
	"sync"

	"closedrules/internal/apriori"
	"closedrules/internal/closedset"
	"closedrules/internal/core"
	"closedrules/internal/itemset"
	"closedrules/internal/lattice"
	"closedrules/internal/rules"
)

// Result holds the outcome of a closed-itemset mining run. Frequent
// itemsets, the iceberg lattice, rules and bases are derived lazily on
// first use and cached. Result is safe for concurrent use.
type Result struct {
	d         *Dataset
	minSup    int
	minerName string
	hasGens   bool
	fc        *closedset.Set

	famOnce sync.Once
	fam     *itemset.Family // lazily mined (Apriori)
	famErr  error
	latOnce sync.Once
	lat     *lattice.Lattice // lazily built
}

// Dataset returns the mined dataset.
func (r *Result) Dataset() *Dataset { return r.d }

// MinSupport returns the absolute minimum support count used.
func (r *Result) MinSupport() int { return r.minSup }

// MinerName returns the registry name of the closed-itemset miner that
// produced the result.
func (r *Result) MinerName() string { return r.minerName }

// TracksGenerators reports whether the producing miner recorded the
// minimal generators of each closed itemset (required by GenericBasis
// and InformativeBasis).
func (r *Result) TracksGenerators() bool { return r.hasGens }

// ClosedItemsets returns the frequent closed itemsets (FC), including
// the bottom h(∅), in canonical order.
func (r *Result) ClosedItemsets() []ClosedItemset { return r.fc.All() }

// NumClosed returns |FC|.
func (r *Result) NumClosed() int { return r.fc.Len() }

// MaximalItemsets returns the maximal frequent (closed) itemsets.
func (r *Result) MaximalItemsets() []ClosedItemset { return r.fc.Maximal() }

// Closure returns h(X), the smallest frequent closed itemset
// containing X; ok is false when X is not frequent.
func (r *Result) Closure(x Itemset) (ClosedItemset, bool) { return r.fc.ClosureOf(x) }

// Support returns supp(X) = supp(h(X)); ok is false when X is not
// frequent.
func (r *Result) Support(x Itemset) (int, bool) { return r.fc.SupportOf(x) }

func (r *Result) family() (*itemset.Family, error) {
	r.famOnce.Do(func() {
		r.fam, _, r.famErr = apriori.Mine(r.d, r.minSup)
	})
	return r.fam, r.famErr
}

func (r *Result) latticeOf() *lattice.Lattice {
	r.latOnce.Do(func() {
		r.lat = lattice.Build(r.fc)
	})
	return r.lat
}

// FrequentItemsets returns all frequent itemsets (mined lazily with
// Apriori at the Result's threshold). The paper's §2 guarantees these
// are recoverable from FC; this method exists for comparisons and for
// basis construction.
func (r *Result) FrequentItemsets() ([]CountedItemset, error) {
	fam, err := r.family()
	if err != nil {
		return nil, err
	}
	return fam.All(), nil
}

// AllRules generates the complete set of valid association rules at
// the given confidence threshold — the redundant set the bases
// compress.
func (r *Result) AllRules(minConf float64) ([]Rule, error) {
	fam, err := r.family()
	if err != nil {
		return nil, err
	}
	return rules.Generate(fam, minConf)
}

// LatticeDOT renders the iceberg lattice in Graphviz format.
func (r *Result) LatticeDOT() string {
	return r.latticeOf().DOT(r.d.Names())
}

// LatticeEdges returns the Hasse edges of the iceberg lattice as
// (lower, upper) pairs of closed itemsets.
func (r *Result) LatticeEdges() [][2]ClosedItemset {
	lat := r.latticeOf()
	var out [][2]ClosedItemset
	for _, e := range lat.Edges() {
		out = append(out, [2]ClosedItemset{lat.Nodes[e[0]], lat.Nodes[e[1]]})
	}
	return out
}

// Bases holds the paper's two bases: Exact is the Duquenne–Guigues
// basis (Theorem 1) and Approximate the transitive reduction of the
// Luxenburger basis at the chosen confidence (Theorem 2). Together
// they are a minimal non-redundant generating set for all valid rules.
type Bases struct {
	Exact       []Rule
	Approximate []Rule

	numTx int
	// unfiltered copies retained so the derivation engine sees the
	// complete diagram regardless of display thresholds.
	dgAll  []Rule
	luxAll []Rule
}

// Bases computes both bases. minConf filters the approximate basis;
// exact rules always have confidence 1. Rules with an empty antecedent
// (possible only for the exact rule ∅ → h(∅) and approximate rules
// out of an empty bottom) are excluded from the exported lists but
// kept internally for derivation.
func (r *Result) Bases(minConf float64) (*Bases, error) {
	fam, err := r.family()
	if err != nil {
		return nil, err
	}
	dg, err := core.DuquenneGuigues(r.d.NumTransactions(), fam, r.fc)
	if err != nil {
		return nil, err
	}
	lat := r.latticeOf()
	luxAll, err := core.LuxenburgerReduction(lat, r.fc, core.LuxenburgerOptions{
		IncludeEmptyAntecedent: true,
	})
	if err != nil {
		return nil, err
	}
	filtered, err := core.LuxenburgerReduction(lat, r.fc, core.LuxenburgerOptions{
		MinConfidence: minConf,
	})
	if err != nil {
		return nil, err
	}
	return &Bases{
		Exact:       core.DropEmptyAntecedent(dg),
		Approximate: filtered,
		numTx:       r.d.NumTransactions(),
		dgAll:       dg,
		luxAll:      luxAll,
	}, nil
}

// LuxenburgerFull returns the unreduced Luxenburger basis: one rule
// per comparable pair of frequent closed itemsets.
func (r *Result) LuxenburgerFull(minConf float64) ([]Rule, error) {
	return core.LuxenburgerFull(r.fc, core.LuxenburgerOptions{MinConfidence: minConf})
}

// GenericBasis returns the generic basis for exact rules (minimal-
// generator antecedents), the follow-on refinement of the same
// authors. Requires a generator-tracking miner (close, a-close,
// titanic).
func (r *Result) GenericBasis() ([]Rule, error) {
	if !r.hasGens {
		return nil, fmt.Errorf("closedrules: miner %q does not track generators; mine with close, a-close or titanic", r.minerName)
	}
	return core.GenericBasis(r.fc)
}

// InformativeBasis returns the informative basis for approximate rules
// (minimal-generator antecedents, closed-itemset consequents); reduced
// restricts consequents to lattice covers.
func (r *Result) InformativeBasis(minConf float64, reduced bool) ([]Rule, error) {
	if !r.hasGens {
		return nil, fmt.Errorf("closedrules: miner %q does not track generators; mine with close, a-close or titanic", r.minerName)
	}
	return core.InformativeBasis(r.latticeOf(), r.fc, reduced, core.LuxenburgerOptions{
		MinConfidence: minConf,
	})
}

// PseudoClosedItemsets returns the frequent pseudo-closed itemsets —
// the antecedents of the Duquenne–Guigues basis.
func (r *Result) PseudoClosedItemsets() ([]CountedItemset, error) {
	fam, err := r.family()
	if err != nil {
		return nil, err
	}
	ps, err := core.PseudoClosedSets(r.d.NumTransactions(), fam, r.fc)
	if err != nil {
		return nil, err
	}
	out := make([]CountedItemset, len(ps))
	for i, p := range ps {
		out[i] = CountedItemset{Items: p.Items, Support: p.Support}
	}
	return out, nil
}

// Engine is the derivation engine of the paper's theorems: it answers
// support, confidence and validity queries for arbitrary rules using
// only the two bases.
type Engine = core.Engine

// Engine builds a derivation engine from the bases.
func (b *Bases) Engine() (*Engine, error) {
	return core.NewEngine(b.numTx, b.dgAll, b.luxAll)
}

// Size returns |Exact| + |Approximate|.
func (b *Bases) Size() int { return len(b.Exact) + len(b.Approximate) }

// DeriveAllRules regenerates the complete set of valid rules at the
// given confidence from the condensed representation alone (closed
// itemsets + bases) — the database is not consulted. It must return
// exactly what AllRules measures; the test suite asserts this.
func (r *Result) DeriveAllRules(minConf float64) ([]Rule, error) {
	bases, err := r.Bases(0)
	if err != nil {
		return nil, err
	}
	eng, err := bases.Engine()
	if err != nil {
		return nil, err
	}
	return core.DeriveAllRules(eng, r.fc, minConf, 25)
}

// SaveClosedItemsets writes the frequent closed itemsets (with their
// generators) in the library's stable text format, so a mined FC can
// be stored and re-analyzed without re-mining.
func (r *Result) SaveClosedItemsets(w io.Writer) error {
	return closedset.Write(w, r.fc)
}

// LoadClosedItemsets reads a collection written by SaveClosedItemsets.
func LoadClosedItemsets(rd io.Reader) ([]ClosedItemset, error) {
	s, err := closedset.Read(rd)
	if err != nil {
		return nil, err
	}
	return s.All(), nil
}
