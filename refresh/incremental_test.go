package refresh

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"closedrules"
)

// appendFile appends text to the watched file.
func appendFile(t *testing.T, path, text string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(text); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFileSourceDeltas walks the append/rewrite classification matrix
// of the delta protocol.
func TestFileSourceDeltas(t *testing.T) {
	ctx := context.Background()
	path := writeClassic(t)
	src := NewFileSource(path)

	// Uncommitted: never an append (there is no epoch to append to).
	if _, ok, err := src.Deltas(ctx); ok || err != nil {
		t.Fatalf("Deltas before commit = ok=%v err=%v, want false, nil", ok, err)
	}
	if _, err := src.Load(ctx); err != nil {
		t.Fatal(err)
	}
	src.Commit()

	// Pure append: exactly the tail comes back.
	appendFile(t, path, "0 1 2 4\n1 2\n")
	if ch, err := src.Changed(ctx); err != nil || !ch {
		t.Fatalf("Changed after append = %v, %v", ch, err)
	}
	tail, ok, err := src.Deltas(ctx)
	if err != nil || !ok {
		t.Fatalf("Deltas after append = ok=%v err=%v, want true, nil", ok, err)
	}
	if tail.NumTransactions() != 2 {
		t.Fatalf("delta has %d transactions, want 2", tail.NumTransactions())
	}
	if got := tail.Transaction(1); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("delta[1] = %v, want [1 2]", got)
	}
	src.Commit() // (base + delta) now served

	// The next append's delta starts after the previous one.
	appendFile(t, path, "2 3\n")
	if ch, _ := src.Changed(ctx); !ch {
		t.Fatal("Changed after second append = false")
	}
	tail, ok, err = src.Deltas(ctx)
	if err != nil || !ok || tail.NumTransactions() != 1 {
		t.Fatalf("second Deltas = %d tx, ok=%v, err=%v; want 1, true, nil", tail.NumTransactions(), ok, err)
	}
	src.Commit()

	// A rewrite is not an append, and the staged bytes still feed Load.
	if err := os.WriteFile(path, []byte("0 1\n2 3\n4 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if ch, _ := src.Changed(ctx); !ch {
		t.Fatal("Changed after rewrite = false")
	}
	if _, ok, err := src.Deltas(ctx); ok || err != nil {
		t.Fatalf("Deltas after rewrite = ok=%v err=%v, want false, nil", ok, err)
	}
	d, err := src.Load(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumTransactions() != 3 {
		t.Fatalf("Load after rewrite = %d tx, want 3", d.NumTransactions())
	}
	src.Commit()

	// Truncation is not an append.
	if err := os.WriteFile(path, []byte("0 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := src.Deltas(ctx); ok {
		t.Fatal("Deltas after truncation = true")
	}
}

// TestFileSourceDeltasMidLineEdit: content that extends the final
// unterminated line mutates that transaction — an edit, not an append.
func TestFileSourceDeltasMidLineEdit(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "midline.dat")
	if err := os.WriteFile(path, []byte("0 1\n2 3"), 0o644); err != nil { // no trailing newline
		t.Fatal(err)
	}
	src := NewFileSource(path)
	if _, err := src.Load(ctx); err != nil {
		t.Fatal(err)
	}
	src.Commit()
	appendFile(t, path, " 4\n") // "2 3" became "2 3 4"
	if ch, _ := src.Changed(ctx); !ch {
		t.Fatal("Changed after mid-line edit = false")
	}
	if _, ok, _ := src.Deltas(ctx); ok {
		t.Fatal("mid-line edit classified as pure append")
	}
	// But a newline-led continuation after an unterminated final line
	// keeps that line's transaction intact: it is a pure append.
	d, err := src.Load(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumTransactions() != 2 {
		t.Fatal("unexpected parse")
	}
	src.Commit()
	appendFile(t, path, "\n5 6\n")
	tail, ok, err := src.Deltas(ctx)
	if err != nil || !ok || tail.NumTransactions() != 1 {
		t.Fatalf("newline-led append = %v tx, ok=%v, err=%v; want 1, true, nil", tail.NumTransactions(), ok, err)
	}
}

// TestTableFileSourceDeltas: table-mode appends may introduce new
// (column, value) items; the delta must arrive in the grown universe
// with first-occurrence numbering intact.
func TestTableFileSourceDeltas(t *testing.T) {
	ctx := context.Background()
	path := filepath.Join(t.TempDir(), "t.csv")
	if err := os.WriteFile(path, []byte("color,size\nred,big\nblue,small\nred,small\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := NewTableFileSource(path, ',', true)
	d, err := src.Load(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumItems() != 4 {
		t.Fatalf("base universe = %d items, want 4", d.NumItems())
	}
	src.Commit()
	appendFile(t, path, "green,big\nred,tiny\n")
	tail, ok, err := src.Deltas(ctx)
	if err != nil || !ok {
		t.Fatalf("table Deltas = ok=%v err=%v", ok, err)
	}
	if tail.NumTransactions() != 2 || tail.NumItems() != 6 {
		t.Fatalf("table delta = %d tx over %d items, want 2 over 6", tail.NumTransactions(), tail.NumItems())
	}
	if name := tail.ItemName(4); name != "color=green" {
		t.Fatalf("new item 4 named %q, want color=green", name)
	}
}

// TestIncrementalCycle drives one polled cycle over an appended file
// and checks the incremental path handled it end to end.
func TestIncrementalCycle(t *testing.T) {
	qs := classicService(t)
	ctx := context.Background()
	path := writeClassic(t)
	src := NewFileSource(path)
	if _, err := src.Load(ctx); err != nil {
		t.Fatal(err)
	}
	src.Commit()
	r, err := New(qs, Config{Source: src, MineOptions: mineOpts()})
	if err != nil {
		t.Fatal(err)
	}

	appendFile(t, path, "0 1 2 4\n")
	if err := r.cycle(ctx, false); err != nil {
		t.Fatalf("cycle over append: %v", err)
	}
	st := r.Stats()
	if st.IncrementalSuccesses != 1 || st.Successes != 1 || st.DeltaTransactions != 1 {
		t.Fatalf("after append cycle: %+v", st)
	}
	if st.LastIncrementalDuration <= 0 || st.LastMineDuration != st.LastIncrementalDuration {
		t.Fatalf("incremental durations not recorded: %+v", st)
	}
	if qs.NumTransactions() != 6 {
		t.Fatalf("serving %d transactions, want 6", qs.NumTransactions())
	}
	if got := qs.ServedResult().MinerName(); got != "incremental" {
		t.Fatalf("served miner = %q, want incremental", got)
	}

	// A rewrite takes the full path; incremental counters stay put.
	if err := os.WriteFile(path, []byte(classicDat), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := r.cycle(ctx, false); err != nil {
		t.Fatalf("cycle over rewrite: %v", err)
	}
	st = r.Stats()
	if st.IncrementalSuccesses != 1 || st.Successes != 2 || st.IncrementalFallbacks != 0 {
		t.Fatalf("after rewrite cycle: %+v", st)
	}
	if got := qs.ServedResult().MinerName(); got == "incremental" {
		t.Fatal("rewrite cycle served an incremental result")
	}
}

// TestIncrementalForcedRefreshRemines: the /admin/reload path keeps
// its unconditional full re-mine even for a pure append.
func TestIncrementalForcedRefreshRemines(t *testing.T) {
	qs := classicService(t)
	ctx := context.Background()
	path := writeClassic(t)
	src := NewFileSource(path)
	if _, err := src.Load(ctx); err != nil {
		t.Fatal(err)
	}
	src.Commit()
	r, err := New(qs, Config{Source: src, MineOptions: mineOpts()})
	if err != nil {
		t.Fatal(err)
	}
	appendFile(t, path, "0 1 2 4\n")
	if err := r.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.IncrementalSuccesses != 0 || st.Successes != 1 {
		t.Fatalf("forced refresh used the incremental path: %+v", st)
	}
}

// TestIncrementalOversizedBatchFallsBack: a batch above the crossover
// ratio re-mines in full and counts a fallback.
func TestIncrementalOversizedBatchFallsBack(t *testing.T) {
	qs := classicService(t)
	ctx := context.Background()
	path := writeClassic(t)
	src := NewFileSource(path)
	if _, err := src.Load(ctx); err != nil {
		t.Fatal(err)
	}
	src.Commit()
	r, err := New(qs, Config{Source: src, MineOptions: mineOpts(), IncrementalMaxRatio: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	appendFile(t, path, "0 1 2 4\n1 2 4\n") // 2 of 5 = 40% > 30%
	if err := r.cycle(ctx, false); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.IncrementalSuccesses != 0 || st.IncrementalFallbacks != 1 || st.Successes != 1 {
		t.Fatalf("oversized batch: %+v", st)
	}
	if qs.NumTransactions() != 7 {
		t.Fatalf("serving %d transactions, want 7", qs.NumTransactions())
	}
}

// TestIncrementalDisabled: the kill switch forces the full path.
func TestIncrementalDisabled(t *testing.T) {
	qs := classicService(t)
	ctx := context.Background()
	path := writeClassic(t)
	src := NewFileSource(path)
	if _, err := src.Load(ctx); err != nil {
		t.Fatal(err)
	}
	src.Commit()
	r, err := New(qs, Config{Source: src, MineOptions: mineOpts(), DisableIncremental: true})
	if err != nil {
		t.Fatal(err)
	}
	appendFile(t, path, "0 1 2 4\n")
	if err := r.cycle(ctx, false); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.IncrementalSuccesses != 0 || st.Successes != 1 {
		t.Fatalf("DisableIncremental ignored: %+v", st)
	}
}

// TestIncrementalGeneratorBasisGate: a service whose bases need
// minimal generators (generic/informative) must keep re-mining in
// full — incremental results cannot maintain generators.
func TestIncrementalGeneratorBasisGate(t *testing.T) {
	ctx := context.Background()
	ds, err := closedrules.NewDataset([][]int{
		{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := closedrules.MineContext(ctx, ds, closedrules.WithMinSupport(0.4))
	if err != nil {
		t.Fatal(err)
	}
	qs, err := closedrules.NewQueryServiceWithBases(res, 0.5, closedrules.BasisSelection{
		Exact: "generic", Approximate: "luxenburger",
	})
	if err != nil {
		t.Fatal(err)
	}
	path := writeClassic(t)
	src := NewFileSource(path)
	if _, err := src.Load(ctx); err != nil {
		t.Fatal(err)
	}
	src.Commit()
	r, err := New(qs, Config{Source: src, MineOptions: mineOpts()})
	if err != nil {
		t.Fatal(err)
	}
	appendFile(t, path, "0 1 2 4\n")
	if err := r.cycle(ctx, false); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.IncrementalSuccesses != 0 || st.Successes != 1 {
		t.Fatalf("generator-basis service took the incremental path: %+v", st)
	}
	if qs.NumTransactions() != 6 {
		t.Fatalf("serving %d transactions, want 6", qs.NumTransactions())
	}
}

// TestIncrementalCommentOnlyAppendSkips: an append that parses to zero
// new transactions commits the new epoch and records a skip.
func TestIncrementalCommentOnlyAppendSkips(t *testing.T) {
	qs := classicService(t)
	ctx := context.Background()
	path := writeClassic(t)
	src := NewFileSource(path)
	if _, err := src.Load(ctx); err != nil {
		t.Fatal(err)
	}
	src.Commit()
	r, err := New(qs, Config{Source: src, MineOptions: mineOpts()})
	if err != nil {
		t.Fatal(err)
	}
	appendFile(t, path, "# a comment\n\n")
	if err := r.cycle(ctx, false); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.Skips != 1 || st.Successes != 0 {
		t.Fatalf("comment-only append: %+v", st)
	}
	// The epoch moved: the next poll is a cheap skip, not a re-probe.
	if ch, err := src.Changed(ctx); err != nil || ch {
		t.Fatalf("Changed after comment-only commit = %v, %v; want false", ch, err)
	}
}

// TestIncrementalLiveAppendUnderConcurrentReads is the end-to-end
// property check: 10 random append schedules against a polling
// refresher with the incremental path active, hammered by concurrent
// readers (-race), with zero failed requests; after each schedule the
// served snapshot must be byte-identical — closed sets, supports, and
// rendered bases — to a full re-mine of the final file.
func TestIncrementalLiveAppendUnderConcurrentReads(t *testing.T) {
	ctx := context.Background()
	for seed := 0; seed < 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("schedule%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(seed)*2741 + 5))
			line := func() string {
				var items []string
				for x := 0; x < 6; x++ {
					if r.Float64() < 0.45 {
						items = append(items, fmt.Sprint(x))
					}
				}
				if len(items) == 0 {
					items = []string{"0"}
				}
				return strings.Join(items, " ") + "\n"
			}
			var sb strings.Builder
			base := 30 + r.Intn(20)
			for i := 0; i < base; i++ {
				sb.WriteString(line())
			}
			path := filepath.Join(t.TempDir(), "live.dat")
			if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
				t.Fatal(err)
			}

			opts := []closedrules.MineOption{closedrules.WithMinSupport(0.25)}
			src := NewFileSource(path)
			d, err := src.Load(ctx)
			if err != nil {
				t.Fatal(err)
			}
			res, err := closedrules.MineContext(ctx, d, opts...)
			if err != nil {
				t.Fatal(err)
			}
			qs, err := closedrules.NewQueryService(res, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			src.Commit()
			ref, err := New(qs, Config{Source: src, Interval: time.Millisecond, MineOptions: opts})
			if err != nil {
				t.Fatal(err)
			}
			if err := ref.Start(); err != nil {
				t.Fatal(err)
			}
			defer ref.Stop()

			var wg sync.WaitGroup
			errc := make(chan error, 16)
			stop := make(chan struct{})
			for i := 0; i < 4; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						if _, _, err := qs.Support(ctx, closedrules.Items(i%6)); err != nil {
							errc <- fmt.Errorf("Support: %w", err)
							return
						}
						if _, err := qs.Recommend(ctx, closedrules.Items(i%6), 3); err != nil {
							errc <- fmt.Errorf("Recommend: %w", err)
							return
						}
					}
				}(i)
			}

			total := base
			for b := 0; b < 3; b++ {
				batch := 1 + r.Intn(4) // ≤ ~13% of base: stays incremental
				var ap strings.Builder
				for i := 0; i < batch; i++ {
					ap.WriteString(line())
				}
				appendFile(t, path, ap.String())
				total += batch
				want := total
				waitFor(t, 10*time.Second, func() bool { return qs.NumTransactions() == want },
					fmt.Sprintf("swap of batch %d", b))
			}
			close(stop)
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Errorf("query failed during live append: %v", err)
			}
			st := ref.Stats()
			if st.Failures != 0 {
				t.Fatalf("refresher failures: %+v", st)
			}
			if st.IncrementalSuccesses < 1 {
				t.Fatalf("no incremental cycles ran: %+v", st)
			}

			// Byte-for-byte equivalence with a full re-mine of the file.
			finalD, err := closedrules.ReadDatFile(path)
			if err != nil {
				t.Fatal(err)
			}
			full, err := closedrules.MineContext(ctx, finalD, opts...)
			if err != nil {
				t.Fatal(err)
			}
			served := qs.ServedResult()
			gotFC, wantFC := served.ClosedItemsets(), full.ClosedItemsets()
			if len(gotFC) != len(wantFC) {
				t.Fatalf("|FC| served %d != full %d", len(gotFC), len(wantFC))
			}
			for i := range wantFC {
				if !gotFC[i].Items.Equal(wantFC[i].Items) || gotFC[i].Support != wantFC[i].Support {
					t.Fatalf("FC[%d]: served %v/%d, full %v/%d",
						i, gotFC[i].Items, gotFC[i].Support, wantFC[i].Items, wantFC[i].Support)
				}
			}
			for _, name := range []string{"duquenne-guigues", "luxenburger"} {
				g, err := served.Basis(ctx, name, closedrules.WithMinConfidence(0.5))
				if err != nil {
					t.Fatalf("served %s: %v", name, err)
				}
				w, err := full.Basis(ctx, name, closedrules.WithMinConfidence(0.5))
				if err != nil {
					t.Fatalf("full %s: %v", name, err)
				}
				if gs, ws := closedrules.FormatRules(g.Rules, served.Dataset()), closedrules.FormatRules(w.Rules, full.Dataset()); gs != ws {
					t.Fatalf("%s basis differs\nserved:\n%s\nfull:\n%s", name, gs, ws)
				}
			}
		})
	}
}
