package refresh

import (
	"bytes"
	"context"
	"crypto/sha256"
	"fmt"
	"os"
	"sync"
	"time"

	"closedrules"
)

// Source supplies datasets to a Refresher. Load is called once per
// refresh cycle and must be safe for concurrent use (a manual
// Refresh can race a polling cycle's change check). Implementations
// should honor ctx cancellation where loading is slow (network
// sources, large files).
type Source interface {
	// Load returns the current dataset. The Refresher mines whatever
	// Load returns, so the returned dataset must be complete — Load is
	// snapshot semantics, not a delta feed.
	Load(ctx context.Context) (*closedrules.Dataset, error)
}

// ChangeDetector is an optional Source extension. When a Source
// implements it, a polling Refresher calls Changed before Load and
// skips the whole mine-and-swap cycle — recording a skip, not a
// cycle failure — when nothing changed. Sources without it are
// treated as changed on every poll. Manual Refresh calls bypass the
// check entirely.
type ChangeDetector interface {
	// Changed reports whether a Load would observe data different
	// from the last committed Load (see Committer). It should be
	// cheap relative to Load (a stat, a version counter, an ETag
	// probe).
	Changed(ctx context.Context) (bool, error)
}

// Committer is the optional Source extension that pairs with
// ChangeDetector: the Refresher calls Commit only after a cycle's
// mining result has been swapped into the QueryService, so change
// detection always compares against the data actually being served.
// A cycle whose Load succeeds but whose mine or swap fails leaves
// the source uncommitted, and the next poll sees the data as still
// changed and retries (under the failure backoff) instead of
// silently skipping forever.
type Committer interface {
	// Commit acknowledges that the dataset returned by the most
	// recent Load is now being served.
	Commit()
}

// DeltaSource is the optional Source extension behind the incremental
// refresh path. After a positive Changed probe, a polling Refresher
// asks Deltas whether the change is a pure append to the committed
// data; when it is, the Refresher extends the served snapshot with
// just the appended transactions (closedrules.UpdateAppend) instead of
// re-mining everything Load would return.
//
// The contract mirrors Load's snapshot semantics shifted to the delta:
// the returned dataset must hold exactly the transactions appended
// since the last committed Load, numbered in the same item universe as
// the committed data (the universe may grow). ok=false means the
// change is not a pure append — a rewrite, a truncation, an
// uncommitted source — and the Refresher falls back to Load. As with
// Load, a subsequent Commit acknowledges that (committed + delta) is
// now being served.
type DeltaSource interface {
	// Deltas returns the transactions appended since the last
	// committed Load. ok=false (with nil error) requests the full
	// Load path; an error fails the cycle.
	Deltas(ctx context.Context) (appended *closedrules.Dataset, ok bool, err error)
}

// SourceFunc adapts a plain dataset-producing function into a Source —
// the callback source for data that lives behind an API, a database
// query, or a generator rather than a file. It has no change
// detection, so every polling cycle re-mines; wrap it in a custom
// ChangeDetector implementation when the upstream can answer "did
// anything change" cheaply.
type SourceFunc func(ctx context.Context) (*closedrules.Dataset, error)

// Load calls f.
func (f SourceFunc) Load(ctx context.Context) (*closedrules.Dataset, error) { return f(ctx) }

// fingerprint identifies one observed file state. mtime and size are
// the cheap probe; sum is the content identity; tx is the transaction
// count the content parsed to (0 until a Load or Deltas parses it),
// which anchors where the next append's delta starts.
type fingerprint struct {
	mtime time.Time
	size  int64
	sum   [sha256.Size]byte
	tx    int
}

// FileSource loads a transaction file from disk and detects changes
// with a two-level probe: the cheap level compares the file's
// modification time and size against the last committed load, and
// only when those differ does it read the file and compare a SHA-256
// checksum — so a rewrite-with-identical-content (an idempotent ETL
// job, a touch(1)) does not trigger a re-mine. The bytes read by a
// positive Changed probe are handed to the following Load, so a real
// change costs one read and one hash, not two.
//
// A detected change is further classified by Deltas (see DeltaSource):
// when the committed content survives as an unmodified prefix of the
// new content — the shape of an append-only transaction log — Deltas
// hands out just the appended transactions, and the Refresher updates
// the served lattice incrementally instead of re-mining. A rewrite
// takes the full Load path as before.
//
// Limitation inherent to the cheap probe: a rewrite that preserves
// both byte length and modification time (e.g. an equal-length
// `cp -p`) is invisible to Changed until some later change moves
// either; Refresher.Refresh (the /admin/reload path) bypasses
// detection and re-mines unconditionally when that matters.
//
// Safe for concurrent use. Create one with NewFileSource or
// NewTableFileSource.
type FileSource struct {
	path   string
	table  bool
	sep    rune
	header bool

	mu        sync.Mutex
	committed bool
	cur       fingerprint // state of the last committed load
	pending   *fingerprint
	// readAhead carries the bytes a positive Changed probe already
	// read, for the immediately following Load.
	readAhead []byte
}

// NewFileSource watches a basket-format (.dat) transaction file: one
// transaction per line, space-separated non-negative item ids.
func NewFileSource(path string) *FileSource {
	return &FileSource{path: path}
}

// NewTableFileSource watches a nominal table file (one attribute per
// column, sep-separated, optionally with a header row) — the same
// format closedrules.ReadTableFile accepts.
func NewTableFileSource(path string, sep rune, header bool) *FileSource {
	return &FileSource{path: path, table: true, sep: sep, header: header}
}

// Path returns the watched file path.
func (s *FileSource) Path() string { return s.path }

// Changed implements ChangeDetector: it stats the file and, when
// mtime or size moved against the last committed load, reads it and
// compares checksums. A file that has never been committed is always
// changed.
func (s *FileSource) Changed(ctx context.Context) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.committed {
		return true, nil
	}
	fi, err := os.Stat(s.path)
	if err != nil {
		return false, fmt.Errorf("refresh: stat %s: %w", s.path, err)
	}
	if fi.ModTime().Equal(s.cur.mtime) && fi.Size() == s.cur.size {
		return false, nil
	}
	// mtime or size moved: confirm with content before re-mining.
	data, err := os.ReadFile(s.path)
	if err != nil {
		return false, fmt.Errorf("refresh: read %s: %w", s.path, err)
	}
	fp := fingerprint{mtime: fi.ModTime(), size: fi.Size(), sum: sha256.Sum256(data)}
	if fp.sum == s.cur.sum {
		// Same bytes, new metadata — remember the new stat so the
		// next poll takes the cheap path again.
		s.cur.mtime = fp.mtime
		s.cur.size = fp.size
		return false, nil
	}
	s.pending = &fp
	s.readAhead = data
	return true, nil
}

// Load reads and parses the file. The observed fingerprint is held
// as pending until Commit; Changed keeps reporting the content as
// changed until then, so a cycle that fails downstream of Load is
// retried rather than skipped.
func (s *FileSource) Load(ctx context.Context) (*closedrules.Dataset, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Consume the probe's staged bytes before anything can return:
	// bytes staged by a cycle that then got cancelled must not
	// survive to a later (possibly forced) cycle, which would mine a
	// stale snapshot of a file that has since moved on.
	data := s.readAhead
	s.readAhead = nil
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if data == nil {
		fi, err := os.Stat(s.path)
		if err != nil {
			return nil, fmt.Errorf("refresh: stat %s: %w", s.path, err)
		}
		data, err = os.ReadFile(s.path)
		if err != nil {
			return nil, fmt.Errorf("refresh: read %s: %w", s.path, err)
		}
		s.pending = &fingerprint{mtime: fi.ModTime(), size: fi.Size(), sum: sha256.Sum256(data)}
	}
	d, err := s.parse(data)
	if err != nil {
		return nil, err
	}
	if s.pending != nil {
		s.pending.tx = d.NumTransactions()
	}
	return d, nil
}

// parse decodes file bytes in the source's configured format. Parsing
// is prefix-stable in both formats: re-parsing a file whose old content
// is a byte prefix (on a line boundary) yields the old transactions
// verbatim, followed by the appended ones, in one item universe — .dat
// items are literal ids, and table items are numbered in
// first-occurrence order. That property is what lets Deltas hand out a
// tail of the re-parsed file as the appended batch.
func (s *FileSource) parse(data []byte) (*closedrules.Dataset, error) {
	var d *closedrules.Dataset
	var err error
	if s.table {
		d, err = closedrules.ReadTable(bytes.NewReader(data), s.sep, s.header)
	} else {
		d, err = closedrules.ReadDat(bytes.NewReader(data))
	}
	if err != nil {
		return nil, fmt.Errorf("refresh: parse %s: %w", s.path, err)
	}
	return d, nil
}

// Deltas implements DeltaSource: it reports whether the pending change
// is a pure append to the committed content — the committed bytes are
// an unmodified prefix of the new bytes, with the append starting on a
// line boundary — and, when it is, parses the new content and returns
// only the transactions past the committed count. Anything else (a
// rewrite, a truncation, an edit of the final unterminated line, a
// source never committed through a Load) returns ok=false, telling the
// Refresher to take the full Load path; the staged bytes are kept so
// that Load does not re-read the file.
func (s *FileSource) Deltas(ctx context.Context) (*closedrules.Dataset, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	if !s.committed || s.cur.tx <= 0 {
		return nil, false, nil
	}
	data := s.readAhead
	if data == nil {
		// No staged probe (a caller using Deltas without Changed):
		// read and stage, so a fallback Load reuses the bytes.
		fi, err := os.Stat(s.path)
		if err != nil {
			return nil, false, fmt.Errorf("refresh: stat %s: %w", s.path, err)
		}
		data, err = os.ReadFile(s.path)
		if err != nil {
			return nil, false, fmt.Errorf("refresh: read %s: %w", s.path, err)
		}
		s.pending = &fingerprint{mtime: fi.ModTime(), size: fi.Size(), sum: sha256.Sum256(data)}
		s.readAhead = data
	}
	prefix := s.cur.size
	if int64(len(data)) <= prefix {
		return nil, false, nil // shrunk or unchanged: not an append
	}
	if sha256.Sum256(data[:prefix]) != s.cur.sum {
		return nil, false, nil // prefix rewritten
	}
	if prefix > 0 && data[prefix-1] != '\n' && data[prefix] != '\n' {
		// The committed content's final unterminated line gained bytes:
		// its transaction changed, so this is an edit, not an append.
		return nil, false, nil
	}
	d, err := s.parse(data)
	if err != nil {
		return nil, false, err
	}
	if d.NumTransactions() < s.cur.tx {
		return nil, false, nil // defensive: parse disagrees with the epoch
	}
	tail, err := d.Slice(s.cur.tx, d.NumTransactions())
	if err != nil {
		return nil, false, err
	}
	if s.pending != nil {
		s.pending.tx = d.NumTransactions()
	}
	s.readAhead = nil
	return tail, true, nil
}

// Commit implements Committer: the dataset from the most recent Load
// is now being served, so Changed compares against its fingerprint
// from here on. Callers that serve an initial Load outside a
// Refresher cycle (cmd/arserve's startup mine) call it directly.
func (s *FileSource) Commit() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pending == nil {
		return
	}
	s.cur = *s.pending
	s.pending = nil
	s.committed = true
}
