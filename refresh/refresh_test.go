package refresh

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"closedrules"
)

const classicDat = "0 2 3\n1 2 4\n0 1 2 4\n1 4\n0 1 2 4\n"

// classicService mines the classic 5-object context and wraps it in a
// QueryService ready to be refreshed.
func classicService(t *testing.T) *closedrules.QueryService {
	t.Helper()
	ds, err := closedrules.NewDataset([][]int{
		{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := closedrules.MineContext(context.Background(), ds, closedrules.WithMinSupport(0.4))
	if err != nil {
		t.Fatal(err)
	}
	qs, err := closedrules.NewQueryService(res, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return qs
}

// writeClassic writes the classic context to a temp .dat file.
func writeClassic(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "classic.dat")
	if err := os.WriteFile(path, []byte(classicDat), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// waitFor polls cond until it is true or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func mineOpts() []closedrules.MineOption {
	return []closedrules.MineOption{closedrules.WithMinSupport(0.4)}
}

func TestFileSourceChangeDetection(t *testing.T) {
	path := writeClassic(t)
	src := NewFileSource(path)
	ctx := context.Background()

	// Never committed: always changed.
	if ch, err := src.Changed(ctx); err != nil || !ch {
		t.Fatalf("Changed before first Load = %v, %v; want true", ch, err)
	}
	d, err := src.Load(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumTransactions() != 5 {
		t.Fatalf("loaded %d transactions, want 5", d.NumTransactions())
	}
	// Loaded but not yet committed (the mine/swap has not succeeded):
	// still changed, so a failed cycle is retried, not skipped.
	if ch, err := src.Changed(ctx); err != nil || !ch {
		t.Fatalf("Changed after uncommitted Load = %v, %v; want true", ch, err)
	}
	src.Commit()
	// Committed and untouched: unchanged.
	if ch, err := src.Changed(ctx); err != nil || ch {
		t.Fatalf("Changed on untouched file = %v, %v; want false", ch, err)
	}
	// Rewrite with identical bytes but a new mtime: the checksum
	// confirms no change.
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
	if ch, err := src.Changed(ctx); err != nil || ch {
		t.Fatalf("Changed after touch-only = %v, %v; want false", ch, err)
	}
	// Append a transaction: changed, and Load sees it.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("0 1 2 4\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if ch, err := src.Changed(ctx); err != nil || !ch {
		t.Fatalf("Changed after append = %v, %v; want true", ch, err)
	}
	// The positive probe read the file; Load must reuse those bytes
	// instead of reading and hashing again.
	if src.readAhead == nil {
		t.Fatal("positive Changed probe did not stage its bytes for Load")
	}
	d2, err := src.Load(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if src.readAhead != nil {
		t.Fatal("Load did not consume the staged probe bytes")
	}
	if d2.NumTransactions() != 6 {
		t.Fatalf("reloaded %d transactions, want 6", d2.NumTransactions())
	}
	src.Commit()
	if ch, _ := src.Changed(ctx); ch {
		t.Fatal("Changed right after committed Load; want false")
	}
}

// TestFailedMineDoesNotCommitFingerprint pins the retry contract: a
// cycle whose Load succeeds but whose mine fails must leave the file
// source uncommitted, so the next poll retries instead of skipping
// the new data forever.
func TestFailedMineDoesNotCommitFingerprint(t *testing.T) {
	qs := classicService(t)
	ctx := context.Background()
	path := writeClassic(t)
	src := NewFileSource(path)
	if _, err := src.Load(ctx); err != nil {
		t.Fatal(err)
	}
	src.Commit() // the initial content is being served

	// A refresher whose Load succeeds and whose mine always fails.
	bad, err := New(qs, Config{Source: src, MineOptions: []closedrules.MineOption{
		closedrules.WithMinSupport(0.4), closedrules.WithAlgorithm("no-such-miner"),
	}})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("0 1 2 4\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	for i := 1; i <= 2; i++ {
		if err := bad.cycle(ctx, false); err == nil {
			t.Fatalf("cycle %d with a bogus miner succeeded", i)
		}
		st := bad.Stats()
		if st.Failures != uint64(i) || st.Skips != 0 {
			t.Fatalf("after failed cycle %d: %+v — the change was skipped, not retried", i, st)
		}
	}
	if n := qs.NumTransactions(); n != 5 {
		t.Fatalf("failed cycles changed the snapshot: %d transactions", n)
	}

	// A working refresher over the same source picks the change up...
	good, err := New(qs, Config{Source: src, MineOptions: mineOpts()})
	if err != nil {
		t.Fatal(err)
	}
	if err := good.cycle(ctx, false); err != nil {
		t.Fatal(err)
	}
	if n := qs.NumTransactions(); n != 6 {
		t.Fatalf("recovered cycle served %d transactions, want 6", n)
	}
	// ...and commits it, so the next poll skips.
	if err := good.cycle(ctx, false); err != nil {
		t.Fatal(err)
	}
	if st := good.Stats(); st.Successes != 1 || st.Skips != 1 {
		t.Fatalf("stats after recovery = %+v, want 1 success + 1 skip", st)
	}
}

// TestCancelledLoadDropsStagedProbeBytes pins a staleness edge: bytes
// staged by a positive Changed probe must not survive a cancelled
// Load, or a later forced cycle would mine and serve a snapshot of
// the file as it was cycles ago.
func TestCancelledLoadDropsStagedProbeBytes(t *testing.T) {
	ctx := context.Background()
	path := writeClassic(t)
	src := NewFileSource(path)
	if _, err := src.Load(ctx); err != nil {
		t.Fatal(err)
	}
	src.Commit()

	appendLine := func(line string) {
		t.Helper()
		f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(line); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	appendLine("0 1 2 4\n") // v2: 6 transactions
	if ch, err := src.Changed(ctx); err != nil || !ch {
		t.Fatalf("Changed = %v, %v", ch, err)
	}
	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := src.Load(cancelled); err == nil {
		t.Fatal("Load with a cancelled context succeeded")
	}
	appendLine("1 2 4\n") // v3: 7 transactions, while v2 was staged
	d, err := src.Load(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumTransactions() != 7 {
		t.Fatalf("forced Load served %d transactions, want the current 7 (stale probe bytes reused)", d.NumTransactions())
	}
}

func TestFileSourceMissingFile(t *testing.T) {
	src := NewFileSource(filepath.Join(t.TempDir(), "absent.dat"))
	if _, err := src.Load(context.Background()); err == nil {
		t.Fatal("Load of a missing file succeeded")
	}
}

func TestTableFileSource(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.csv")
	if err := os.WriteFile(path, []byte("a,x\nb,x\na,y\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := NewTableFileSource(path, ',', false).Load(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if d.NumTransactions() != 3 {
		t.Fatalf("table source loaded %d transactions, want 3", d.NumTransactions())
	}
}

func TestManualRefreshSwaps(t *testing.T) {
	qs := classicService(t)
	src := SourceFunc(func(ctx context.Context) (*closedrules.Dataset, error) {
		return closedrules.NewDataset([][]int{
			{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4},
			{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4},
		})
	})
	r, err := New(qs, Config{Source: src, MineOptions: mineOpts()})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n := qs.NumTransactions(); n != 10 {
		t.Fatalf("after refresh NumTransactions = %d, want 10", n)
	}
	st := r.Stats()
	if st.Cycles != 1 || st.Successes != 1 || st.Failures != 0 {
		t.Fatalf("stats = %+v, want 1 cycle, 1 success", st)
	}
	if st.LastSwap.IsZero() || st.LastMineDuration <= 0 || st.LastError != "" {
		t.Fatalf("stats after success = %+v", st)
	}
	if got := qs.Stats().Swaps; got != 1 {
		t.Fatalf("QueryService swap counter = %d, want 1", got)
	}
}

func TestPollingPicksUpFileChangeAndSkipsUnchanged(t *testing.T) {
	qs := classicService(t)
	path := writeClassic(t)
	r, err := New(qs, Config{
		Source:      NewFileSource(path),
		Interval:    3 * time.Millisecond,
		MineOptions: mineOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if !r.Stats().Running {
		t.Fatal("Stats().Running = false after Start")
	}

	// First poll loads the (identical) file and swaps once; after
	// that the source is unchanged and cycles skip.
	waitFor(t, 5*time.Second, func() bool { return r.Stats().Skips >= 2 }, "unchanged polls to skip")
	if s := r.Stats(); s.Successes != 1 {
		t.Fatalf("successes before file change = %d, want 1 (initial load)", s.Successes)
	}

	// Append a transaction; the poller must pick it up and swap.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("0 1 2 4\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	waitFor(t, 5*time.Second, func() bool { return qs.NumTransactions() == 6 }, "appended transaction to be served")
	if s := r.Stats(); s.Successes != 2 || s.Failures != 0 {
		t.Fatalf("stats after pickup = %+v, want 2 successes, 0 failures", s)
	}
}

// TestSwapUnderConcurrentReads hammers the QueryService from many
// goroutines while a fast refresher swaps snapshots underneath — the
// zero-failed-requests-during-swap guarantee, checked under -race.
func TestSwapUnderConcurrentReads(t *testing.T) {
	qs := classicService(t)
	flip := false
	src := SourceFunc(func(ctx context.Context) (*closedrules.Dataset, error) {
		flip = !flip // single-flight: only one cycle reads this at a time
		base := [][]int{{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4}}
		if flip {
			base = append(base, []int{0, 1, 2, 4})
		}
		return closedrules.NewDataset(base)
	})
	r, err := New(qs, Config{Source: src, Interval: time.Millisecond, MineOptions: mineOpts()})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()

	ctx := context.Background()
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := qs.Support(ctx, closedrules.Items(2)); err != nil {
					errc <- fmt.Errorf("Support: %w", err)
					return
				}
				if _, err := qs.Recommend(ctx, closedrules.Items(i%5), 3); err != nil {
					errc <- fmt.Errorf("Recommend: %w", err)
					return
				}
			}
		}(i)
	}
	waitFor(t, 10*time.Second, func() bool { return r.Stats().Successes >= 5 }, "five swaps under load")
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Errorf("query failed during swaps: %v", err)
	}
	if s := r.Stats(); s.Failures != 0 {
		t.Fatalf("refresher failures under load = %d (last: %s)", s.Failures, s.LastError)
	}
}

// TestMineDeadlineKeepsOldSnapshot gives the cycle a deadline no mine
// can meet and asserts the served snapshot is untouched.
func TestMineDeadlineKeepsOldSnapshot(t *testing.T) {
	qs := classicService(t)
	before := qs.NumTransactions()
	src := SourceFunc(func(ctx context.Context) (*closedrules.Dataset, error) {
		// Ignore ctx deliberately: the deadline must be enforced by
		// the mining layer, not by a cooperative source.
		return closedrules.NewDataset([][]int{
			{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4}, {0, 1},
		})
	})
	r, err := New(qs, Config{Source: src, MineTimeout: time.Nanosecond, MineOptions: mineOpts()})
	if err != nil {
		t.Fatal(err)
	}
	err = r.Refresh(context.Background())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Refresh with 1ns deadline = %v, want DeadlineExceeded", err)
	}
	if n := qs.NumTransactions(); n != before {
		t.Fatalf("snapshot changed after failed cycle: %d -> %d", before, n)
	}
	st := r.Stats()
	if st.Failures != 1 || st.Successes != 0 || st.LastError == "" {
		t.Fatalf("stats after deadline failure = %+v", st)
	}
	if got := qs.Stats().Swaps; got != 0 {
		t.Fatalf("swap counter after failed cycle = %d, want 0", got)
	}
}

func TestBackoffSchedule(t *testing.T) {
	base, cap := 10*time.Millisecond, 80*time.Millisecond
	want := []time.Duration{
		0: base, 1: base, 2: 20 * time.Millisecond, 3: 40 * time.Millisecond,
		4: cap, 5: cap, 6: cap,
	}
	for streak, w := range want {
		if got := backoff(base, cap, streak); got != w {
			t.Errorf("backoff(streak=%d) = %v, want %v", streak, got, w)
		}
	}
	// A huge streak must clamp, not overflow.
	if got := backoff(base, cap, 200); got != cap {
		t.Errorf("backoff(streak=200) = %v, want %v", got, cap)
	}
	if got := backoff(time.Hour, 365*24*time.Hour, 100); got != 365*24*time.Hour {
		t.Errorf("backoff overflow guard = %v", got)
	}
}

// TestBackoffAfterRepeatedSourceErrors measures the spacing of
// consecutive failures: with BackoffBase ≫ Interval the second and
// third failures must arrive backoff-spaced, not interval-spaced.
func TestBackoffAfterRepeatedSourceErrors(t *testing.T) {
	qs := classicService(t)
	src := SourceFunc(func(ctx context.Context) (*closedrules.Dataset, error) {
		return nil, errors.New("boom")
	})
	r, err := New(qs, Config{
		Source:      src,
		Interval:    2 * time.Millisecond,
		BackoffBase: 30 * time.Millisecond,
		MineOptions: mineOpts(),
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	waitFor(t, 10*time.Second, func() bool { return r.Stats().Failures >= 3 }, "three failures")
	// Failure 1 lands after ~Interval; failures 2 and 3 wait out the
	// 30ms and 60ms backoffs. Timers never fire early, so three
	// failures cannot arrive before 2+30+60 ms.
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("three failures after %v — backoff not applied", elapsed)
	}
	st := r.Stats()
	if st.ConsecutiveFailures < 3 {
		t.Fatalf("ConsecutiveFailures = %d, want >= 3", st.ConsecutiveFailures)
	}
	if !strings.Contains(st.LastError, "boom") {
		t.Fatalf("LastError = %q, want the source error", st.LastError)
	}
	if st.Successes != 0 {
		t.Fatalf("successes from a failing source = %d", st.Successes)
	}
}

// TestStopDuringInflightCycle blocks a cycle inside Source.Load and
// asserts Stop cancels it and returns promptly, without recording the
// shutdown as a cycle failure.
func TestStopDuringInflightCycle(t *testing.T) {
	qs := classicService(t)
	started := make(chan struct{})
	var once sync.Once
	src := SourceFunc(func(ctx context.Context) (*closedrules.Dataset, error) {
		once.Do(func() { close(started) })
		<-ctx.Done() // block until Stop cancels the run context
		return nil, ctx.Err()
	})
	r, err := New(qs, Config{Source: src, Interval: time.Millisecond, MineOptions: mineOpts()})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	<-started
	done := make(chan struct{})
	go func() { r.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not return while a cycle was blocked in Load")
	}
	st := r.Stats()
	if st.Running {
		t.Fatal("Running = true after Stop")
	}
	if st.Failures != 0 || st.LastError != "" {
		t.Fatalf("shutdown recorded as failure: %+v", st)
	}
	// The lifecycle is restartable.
	if err := r.Start(); err != nil {
		t.Fatalf("restart after Stop: %v", err)
	}
	r.Stop()
}

func TestRefreshBusySingleFlight(t *testing.T) {
	qs := classicService(t)
	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	src := SourceFunc(func(ctx context.Context) (*closedrules.Dataset, error) {
		once.Do(func() { close(entered) })
		<-gate
		return nil, errors.New("released")
	})
	r, err := New(qs, Config{Source: src, MineOptions: mineOpts()})
	if err != nil {
		t.Fatal(err)
	}
	first := make(chan error, 1)
	go func() { first <- r.Refresh(context.Background()) }()
	<-entered
	if err := r.Refresh(context.Background()); !errors.Is(err, ErrBusy) {
		t.Fatalf("overlapping Refresh = %v, want ErrBusy", err)
	}
	close(gate)
	if err := <-first; err == nil {
		t.Fatal("first Refresh should surface the source error")
	}
	// The dropped cycle must not have been counted.
	if st := r.Stats(); st.Cycles != 1 {
		t.Fatalf("Cycles = %d after one real + one busy refresh, want 1", st.Cycles)
	}
}

func TestLifecycleErrors(t *testing.T) {
	qs := classicService(t)
	if _, err := New(nil, Config{Source: NewFileSource("x")}); err == nil {
		t.Error("New(nil qs) succeeded")
	}
	if _, err := New(qs, Config{}); err == nil {
		t.Error("New without Source succeeded")
	}
	if _, err := New(qs, Config{Source: NewFileSource("x"), Interval: -time.Second}); err == nil {
		t.Error("New with negative Interval succeeded")
	}
	r, err := New(qs, Config{Source: NewFileSource("x"), MineOptions: mineOpts()})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Start(); err == nil {
		r.Stop()
		t.Error("Start without Interval succeeded")
	}
	r.Stop() // Stop before Start is a no-op
	r2, err := New(qs, Config{Source: NewFileSource(writeClassic(t)), Interval: time.Hour, MineOptions: mineOpts()})
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Start(); err != nil {
		t.Fatal(err)
	}
	if err := r2.Start(); err == nil {
		t.Error("double Start succeeded")
	}
	r2.Stop()
	r2.Stop() // idempotent
}
