package refresh_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"closedrules"
	"closedrules/refresh"
)

// ExampleFileSource shows the file-watcher path: the served snapshot
// follows a transaction file. Refresh runs one cycle by hand; Start
// runs the same cycle on an interval in the background.
func ExampleFileSource() {
	dir, _ := os.MkdirTemp("", "refresh-example")
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "tx.dat")
	_ = os.WriteFile(path, []byte("0 2 3\n1 2 4\n0 1 2 4\n1 4\n0 1 2 4\n"), 0o644)

	ctx := context.Background()
	src := refresh.NewFileSource(path)
	ds, _ := src.Load(ctx)
	res, _ := closedrules.MineContext(ctx, ds, closedrules.WithMinSupport(0.4))
	qs, _ := closedrules.NewQueryService(res, 0.5)
	r, _ := refresh.New(qs, refresh.Config{
		Source:      src,
		MineOptions: []closedrules.MineOption{closedrules.WithMinSupport(0.4)},
	})
	fmt.Println("before:", qs.NumTransactions(), "transactions")

	// New data arrives in the file; the next cycle picks it up and
	// hot-swaps the served snapshot.
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	_, _ = f.WriteString("0 1 2 4\n")
	_ = f.Close()
	if err := r.Refresh(ctx); err != nil {
		fmt.Println("refresh:", err)
	}
	fmt.Println("after: ", qs.NumTransactions(), "transactions")
	// Output:
	// before: 5 transactions
	// after:  6 transactions
}

// ExampleSourceFunc shows the callback source: any function that can
// produce a dataset — a database query, an API fetch, a generator —
// becomes a refreshable data source.
func ExampleSourceFunc() {
	ctx := context.Background()
	tx := [][]int{{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4}}
	src := refresh.SourceFunc(func(ctx context.Context) (*closedrules.Dataset, error) {
		return closedrules.NewDataset(tx)
	})
	ds, _ := src.Load(ctx)
	res, _ := closedrules.MineContext(ctx, ds, closedrules.WithMinSupport(0.4))
	qs, _ := closedrules.NewQueryService(res, 0.5)
	r, _ := refresh.New(qs, refresh.Config{
		Source:      src,
		MineOptions: []closedrules.MineOption{closedrules.WithMinSupport(0.4)},
	})

	tx = append(tx, []int{1, 2, 4}) // the upstream data grew
	if err := r.Refresh(ctx); err != nil {
		fmt.Println("refresh:", err)
	}
	st := r.Stats()
	fmt.Printf("%d transactions after %d successful cycle(s)\n",
		qs.NumTransactions(), st.Successes)
	// Output:
	// 6 transactions after 1 successful cycle(s)
}
