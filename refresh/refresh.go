// Package refresh keeps a closedrules.QueryService fresh as its
// underlying transaction data changes — the background half of the
// serving stack's hot-reload path. A Refresher polls a pluggable
// Source on a configurable interval, re-mines the dataset through the
// miner registry under a per-cycle deadline, rebuilds the served
// basis pair, and atomically Swaps the new snapshot in only on
// success: queries never observe a partial update, and a failed cycle
// (unreadable source, mine deadline exceeded, mining error) leaves
// the previous snapshot serving untouched.
//
// Cycles are single-flight — a poll tick that fires while a cycle is
// still running is dropped, and a manual Refresh racing one returns
// ErrBusy — and repeated failures back off exponentially so a broken
// source does not burn CPU re-mining at full poll speed. Stats
// exposes the cycle counters the serving layer publishes on /healthz
// and /metrics (see the server package).
//
// Sources that can classify a change as a pure append (DeltaSource —
// FileSource does, by prefix checksum) get an incremental fast path on
// polled cycles: the Refresher extends the served snapshot with just
// the appended transactions via closedrules.UpdateAppend, which
// updates the resident closed-set lattice instead of re-mining, and
// swaps the result exactly like a full cycle. Oversized batches
// (Config.IncrementalMaxRatio), threshold changes, and bases that need
// generators all fall back to the full re-mine; manual Refresh always
// re-mines in full.
//
// Two Source implementations are built in: FileSource watches a
// transaction file via mtime, size and checksum, and SourceFunc wraps
// any func(ctx) (*Dataset, error) callback. Anything else — a
// database query, an object-store fetch — plugs in by implementing
// the one-method Source interface, optionally with ChangeDetector to
// make polling cheap.
package refresh

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"closedrules"
)

// ErrBusy is returned by Refresh when another cycle — a poll tick or
// a concurrent manual refresh — is already in flight. The in-flight
// cycle's outcome will land; the caller's request added nothing.
var ErrBusy = errors.New("refresh: cycle already in flight")

// Config tunes a Refresher. Source is required; everything else has a
// usable default.
type Config struct {
	// Source supplies the dataset each cycle re-mines. Required.
	Source Source
	// Interval is the poll period for Start's background loop. It
	// must be positive to Start; a Refresher used only through manual
	// Refresh calls may leave it zero.
	Interval time.Duration
	// MineTimeout bounds one cycle's load+mine+swap. 0 means no
	// deadline. When the deadline expires mid-mine the cycle fails
	// and the old snapshot keeps serving.
	MineTimeout time.Duration
	// MineOptions configure the re-mine (algorithm, support
	// threshold, parallelism) — the same options MineContext takes.
	// A support threshold option is required, exactly as for a direct
	// MineContext call.
	MineOptions []closedrules.MineOption
	// BackoffBase is the delay after the first consecutive failure;
	// each further failure doubles it. 0 means Interval (or 1s for a
	// manual-only Refresher).
	BackoffBase time.Duration
	// BackoffMax caps the failure backoff. 0 means 16× BackoffBase.
	BackoffMax time.Duration
	// DisableIncremental forces every cycle down the full re-mine
	// path even when Source implements DeltaSource.
	DisableIncremental bool
	// IncrementalMaxRatio is the incremental-vs-full crossover knob:
	// an append batch larger than this fraction of the served
	// dataset's transactions is re-mined from scratch rather than
	// applied incrementally (the delta enumeration loses to a fresh
	// mine well before the batch reaches dataset size). 0 means the
	// default 0.25; negative values are rejected by New.
	IncrementalMaxRatio float64
}

// DefaultIncrementalMaxRatio is the append-batch size, as a fraction
// of the served dataset, above which a cycle re-mines in full instead
// of updating the lattice incrementally.
const DefaultIncrementalMaxRatio = 0.25

// Stats is a point-in-time snapshot of a Refresher's cycle counters —
// what the serving layer reports on /healthz and /metrics.
type Stats struct {
	// Cycles counts cycles attempted: poll ticks that ran plus manual
	// Refresh calls. Ticks dropped by single-flight are not counted.
	Cycles uint64
	// Successes counts cycles that mined and swapped a new snapshot.
	Successes uint64
	// Skips counts polling cycles the Source reported unchanged.
	Skips uint64
	// Failures counts cycles that errored (source, mine, or swap).
	Failures uint64
	// ConsecutiveFailures is the current failure streak driving the
	// backoff; 0 after any success or skip.
	ConsecutiveFailures int
	// LastError is the message of the most recent cycle failure, or
	// "" when the most recent completed cycle succeeded or skipped.
	LastError string
	// LastSwap is when the last successful Swap landed (zero until
	// the first).
	LastSwap time.Time
	// LastMineDuration is how long the last successful cycle spent
	// building its snapshot — a full mine or an incremental update,
	// whichever the cycle took (zero until the first success).
	LastMineDuration time.Duration
	// IncrementalSuccesses counts successful cycles that applied an
	// append delta to the served lattice instead of re-mining — a
	// subset of Successes.
	IncrementalSuccesses uint64
	// IncrementalFallbacks counts cycles that saw an append delta but
	// re-mined in full anyway: the batch exceeded
	// IncrementalMaxRatio, or the update engine refused (lowered
	// threshold, no served result).
	IncrementalFallbacks uint64
	// DeltaTransactions is the total number of appended transactions
	// applied through the incremental path.
	DeltaTransactions uint64
	// LastIncrementalDuration is how long the last successful
	// incremental cycle spent updating the lattice (zero until the
	// first incremental success).
	LastIncrementalDuration time.Duration
	// Running reports whether the background poll loop is active.
	Running bool
}

// Refresher re-mines a data source in the background and hot-swaps
// the result into a QueryService. Create one with New; all methods
// are safe for concurrent use. The zero value is not usable.
type Refresher struct {
	qs  *closedrules.QueryService
	cfg Config

	// flight serializes cycles: TryLock semantics give single-flight
	// (an overlapping cycle is dropped, never queued).
	flight sync.Mutex

	// life guards the Start/Stop state.
	life   sync.Mutex
	cancel context.CancelFunc
	done   chan struct{}

	// mu guards the counters below.
	mu          sync.Mutex
	cycles      uint64
	successes   uint64
	skips       uint64
	failures    uint64
	incSucc     uint64
	incFallback uint64
	deltaTx     uint64
	failStreak  int
	lastError   string
	lastSwap    time.Time
	lastMineDur time.Duration
	lastIncDur  time.Duration
}

// New builds a Refresher that feeds qs from cfg.Source. The
// QueryService keeps its confidence threshold and basis selection
// across every swap (that is Swap's contract); the Refresher only
// supplies fresh mining results.
func New(qs *closedrules.QueryService, cfg Config) (*Refresher, error) {
	if qs == nil {
		return nil, fmt.Errorf("refresh: nil QueryService")
	}
	if cfg.Source == nil {
		return nil, fmt.Errorf("refresh: Config.Source is required")
	}
	if cfg.Interval < 0 || cfg.MineTimeout < 0 || cfg.BackoffBase < 0 || cfg.BackoffMax < 0 {
		return nil, fmt.Errorf("refresh: negative duration in Config")
	}
	if cfg.IncrementalMaxRatio < 0 {
		return nil, fmt.Errorf("refresh: negative Config.IncrementalMaxRatio")
	}
	if cfg.IncrementalMaxRatio == 0 {
		cfg.IncrementalMaxRatio = DefaultIncrementalMaxRatio
	}
	if cfg.BackoffBase == 0 {
		if cfg.Interval > 0 {
			cfg.BackoffBase = cfg.Interval
		} else {
			cfg.BackoffBase = time.Second
		}
	}
	if cfg.BackoffMax == 0 {
		cfg.BackoffMax = 16 * cfg.BackoffBase
	}
	if cfg.BackoffMax < cfg.BackoffBase {
		cfg.BackoffMax = cfg.BackoffBase
	}
	return &Refresher{qs: qs, cfg: cfg}, nil
}

// Service returns the QueryService this Refresher feeds.
func (r *Refresher) Service() *closedrules.QueryService { return r.qs }

// Start launches the background poll loop: every Interval (stretched
// by backoff after failures) it checks the Source for changes,
// re-mines, and swaps. It errors when the loop is already running or
// Interval is not positive. Stop shuts the loop down.
func (r *Refresher) Start() error {
	r.life.Lock()
	defer r.life.Unlock()
	if r.cancel != nil {
		return fmt.Errorf("refresh: already started")
	}
	if r.cfg.Interval <= 0 {
		return fmt.Errorf("refresh: Start needs a positive Config.Interval")
	}
	ctx, cancel := context.WithCancel(context.Background())
	r.cancel = cancel
	r.done = make(chan struct{})
	go r.run(ctx, r.done)
	return nil
}

// Stop cancels the poll loop — including a cycle in flight, whose
// load and mine observe the cancellation at their next context check
// — and waits for it to exit. Stopping a refresher that is not
// running is a no-op; after Stop, Start may be called again.
func (r *Refresher) Stop() {
	r.life.Lock()
	defer r.life.Unlock()
	if r.cancel == nil {
		return
	}
	r.cancel()
	<-r.done
	r.cancel = nil
	r.done = nil
}

// run is the poll loop. A failed cycle stretches the next wait to the
// backoff delay; success or skip restores the configured interval.
func (r *Refresher) run(ctx context.Context, done chan struct{}) {
	defer close(done)
	t := time.NewTimer(r.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		err := r.cycle(ctx, false)
		delay := r.cfg.Interval
		if err != nil && !errors.Is(err, ErrBusy) && !errors.Is(err, context.Canceled) {
			delay = r.backoffDelay()
		}
		t.Reset(delay)
	}
}

// Refresh runs one cycle right now, bypassing change detection — the
// POST /admin/reload path. It returns ErrBusy when a cycle is already
// in flight, nil after a successful swap, and the cycle's error
// otherwise (the old snapshot keeps serving on any error).
func (r *Refresher) Refresh(ctx context.Context) error {
	return r.cycle(ctx, true)
}

// cycle is one load→mine→swap pass. force bypasses ChangeDetector
// (manual refresh); polling passes force=false so an unchanged source
// costs a stat, not a mine.
func (r *Refresher) cycle(ctx context.Context, force bool) error {
	if !r.flight.TryLock() {
		return ErrBusy
	}
	defer r.flight.Unlock()

	r.mu.Lock()
	r.cycles++
	r.mu.Unlock()

	if r.cfg.MineTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.cfg.MineTimeout)
		defer cancel()
	}

	if !force {
		if cd, ok := r.cfg.Source.(ChangeDetector); ok {
			changed, err := cd.Changed(ctx)
			if err != nil {
				return r.fail(fmt.Errorf("refresh: change check: %w", err))
			}
			if !changed {
				r.mu.Lock()
				r.skips++
				r.failStreak = 0
				r.lastError = ""
				r.mu.Unlock()
				return nil
			}
		}
	}

	// Incremental path: on a polled cycle whose source classifies the
	// change as a pure append, extend the served snapshot with just the
	// appended transactions instead of re-mining everything. Forced
	// refreshes (POST /admin/reload) keep their documented semantics —
	// an unconditional full re-mine.
	if !force && !r.cfg.DisableIncremental {
		if ds, ok := r.cfg.Source.(DeltaSource); ok {
			if handled, err := r.incremental(ctx, ds); handled {
				return err
			}
		}
	}

	d, err := r.cfg.Source.Load(ctx)
	if err != nil {
		return r.fail(fmt.Errorf("refresh: load: %w", err))
	}
	start := time.Now()
	res, err := closedrules.MineContext(ctx, d, r.cfg.MineOptions...)
	if err != nil {
		return r.fail(fmt.Errorf("refresh: mine: %w", err))
	}
	mineDur := time.Since(start)
	if err := r.qs.Swap(res); err != nil {
		return r.fail(fmt.Errorf("refresh: swap: %w", err))
	}
	// Only now is the loaded data actually served; committing earlier
	// would let a failed mine strand change detection on data the
	// service never saw.
	if c, ok := r.cfg.Source.(Committer); ok {
		c.Commit()
	}

	r.mu.Lock()
	r.successes++
	r.failStreak = 0
	r.lastError = ""
	r.lastSwap = time.Now()
	r.lastMineDur = mineDur
	r.mu.Unlock()
	return nil
}

// incremental attempts one append-delta cycle. handled=true means the
// cycle is settled (success, skip, or failure) and err is its outcome;
// handled=false sends the caller down the full load→mine→swap path —
// either the change was not a pure append, or the incremental engine
// declined (oversized batch, changed thresholds), which is a fallback,
// not a failure.
func (r *Refresher) incremental(ctx context.Context, ds DeltaSource) (bool, error) {
	prev := r.qs.ServedResult()
	if prev == nil || servedBasesNeedGenerators(r.qs) {
		// No resident lattice to extend, or the served bases need the
		// minimal generators an incremental result cannot maintain.
		return false, nil
	}
	delta, ok, err := ds.Deltas(ctx)
	if err != nil {
		return true, r.fail(fmt.Errorf("refresh: delta check: %w", err))
	}
	if !ok {
		return false, nil
	}
	dn := delta.NumTransactions()
	if dn == 0 {
		// Append-shaped change with no new transactions (trailing
		// comments, whitespace): nothing to mine. Commit so change
		// detection re-anchors, and record the cycle as a skip.
		if c, ok := r.cfg.Source.(Committer); ok {
			c.Commit()
		}
		r.mu.Lock()
		r.skips++
		r.failStreak = 0
		r.lastError = ""
		r.mu.Unlock()
		return true, nil
	}
	if n := prev.Dataset().NumTransactions(); n == 0 || float64(dn) > r.cfg.IncrementalMaxRatio*float64(n) {
		// Oversized batch: past the crossover a fresh mine is cheaper
		// than enumerating the delta's projections.
		r.mu.Lock()
		r.incFallback++
		r.mu.Unlock()
		return false, nil
	}
	start := time.Now()
	res, err := closedrules.UpdateAppend(ctx, prev, delta, r.cfg.MineOptions...)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return true, r.fail(fmt.Errorf("refresh: incremental update: %w", err))
		}
		// The engine refused (lowered threshold, bad options): re-mine
		// in full within this same cycle.
		r.mu.Lock()
		r.incFallback++
		r.mu.Unlock()
		return false, nil
	}
	dur := time.Since(start)
	if err := r.qs.Swap(res); err != nil {
		return true, r.fail(fmt.Errorf("refresh: swap: %w", err))
	}
	if c, ok := r.cfg.Source.(Committer); ok {
		c.Commit()
	}
	r.mu.Lock()
	r.successes++
	r.incSucc++
	r.deltaTx += uint64(dn)
	r.failStreak = 0
	r.lastError = ""
	r.lastSwap = time.Now()
	r.lastMineDur = dur
	r.lastIncDur = dur
	r.mu.Unlock()
	return true, nil
}

// servedBasesNeedGenerators reports whether either served basis
// declares a Generators requirement. Incremental results do not carry
// generators, so such a service must be fed by full re-mines.
func servedBasesNeedGenerators(qs *closedrules.QueryService) bool {
	sel := qs.ServedBases()
	for _, name := range []string{sel.Exact, sel.Approximate} {
		if name == "" {
			continue
		}
		b, err := closedrules.LookupBasis(name)
		if err != nil || b.Requirements().Generators {
			return true
		}
	}
	return false
}

// fail records a cycle failure and returns err. A cancellation from
// Stop (or a caller-cancelled manual Refresh) is passed through
// without counting: shutdown is not a source failure and must not
// poison LastError or the backoff streak.
func (r *Refresher) fail(err error) error {
	if errors.Is(err, context.Canceled) {
		return err
	}
	r.mu.Lock()
	r.failures++
	r.failStreak++
	r.lastError = err.Error()
	r.mu.Unlock()
	return err
}

// backoffDelay computes the wait after the current failure streak:
// BackoffBase doubled per consecutive failure, capped at BackoffMax.
func (r *Refresher) backoffDelay() time.Duration {
	r.mu.Lock()
	streak := r.failStreak
	r.mu.Unlock()
	return backoff(r.cfg.BackoffBase, r.cfg.BackoffMax, streak)
}

// backoff is the pure backoff schedule: base·2^(streak-1) clamped to
// [base, max]. A streak of 0 (no failures) yields base.
func backoff(base, max time.Duration, streak int) time.Duration {
	d := base
	for i := 1; i < streak; i++ {
		d *= 2
		if d >= max || d < 0 { // d < 0 guards duration overflow
			return max
		}
	}
	if d > max {
		return max
	}
	return d
}

// Stats returns a snapshot of the cycle counters.
func (r *Refresher) Stats() Stats {
	r.life.Lock()
	running := r.cancel != nil
	r.life.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	return Stats{
		Cycles:                  r.cycles,
		Successes:               r.successes,
		Skips:                   r.skips,
		Failures:                r.failures,
		ConsecutiveFailures:     r.failStreak,
		LastError:               r.lastError,
		LastSwap:                r.lastSwap,
		LastMineDuration:        r.lastMineDur,
		IncrementalSuccesses:    r.incSucc,
		IncrementalFallbacks:    r.incFallback,
		DeltaTransactions:       r.deltaTx,
		LastIncrementalDuration: r.lastIncDur,
		Running:                 running,
	}
}
