package closedrules

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"closedrules/internal/testgen"
)

// randomTx draws raw transactions for append-schedule tests.
func randomTx(r *rand.Rand, n, items int, density float64) [][]int {
	raw := make([][]int, n)
	for i := range raw {
		for x := 0; x < items; x++ {
			if r.Float64() < density {
				raw[i] = append(raw[i], x)
			}
		}
	}
	return raw
}

// TestUpdateAppendMatchesFullMine replays 10 random append schedules
// and checks, at every step, that the incremental Result is
// byte-identical to a full re-mine of the concatenated dataset: same
// closed itemsets and supports, and the same rendered Duquenne–Guigues
// and Luxenburger bases.
func TestUpdateAppendMatchesFullMine(t *testing.T) {
	ctx := context.Background()
	for seed := 0; seed < 10; seed++ {
		r := rand.New(rand.NewSource(int64(seed)*6151 + 17))
		raw := randomTx(r, 20+r.Intn(30), 8, 0.4)
		rel := 0.15 + 0.2*r.Float64()
		opts := []MineOption{WithMinSupport(rel)}

		cut := 6 + r.Intn(len(raw)/2)
		base, err := NewDataset(raw[:cut])
		if err != nil {
			t.Fatal(err)
		}
		res, err := MineContext(ctx, base, opts...)
		if err != nil {
			t.Fatal(err)
		}
		for cut < len(raw) {
			hi := cut + 1 + r.Intn(6)
			if hi > len(raw) {
				hi = len(raw)
			}
			appended, err := NewDataset(raw[cut:hi])
			if err != nil {
				t.Fatal(err)
			}
			inc, err := UpdateAppend(ctx, res, appended, opts...)
			if err != nil {
				t.Fatalf("seed %d: UpdateAppend(%d->%d): %v", seed, cut, hi, err)
			}
			fullD, err := NewDataset(raw[:hi])
			if err != nil {
				t.Fatal(err)
			}
			full, err := MineContext(ctx, fullD, opts...)
			if err != nil {
				t.Fatal(err)
			}
			assertResultsEquivalent(t, inc, full)
			res, cut = inc, hi
		}
	}
}

// assertResultsEquivalent compares closed sets, supports and the
// generator-free bases of an incremental result against a full mine.
func assertResultsEquivalent(t *testing.T, inc, full *Result) {
	t.Helper()
	if inc.NumClosed() != full.NumClosed() {
		t.Fatalf("|FC| %d != %d", inc.NumClosed(), full.NumClosed())
	}
	gotFC, wantFC := inc.ClosedItemsets(), full.ClosedItemsets()
	for i := range wantFC {
		if !gotFC[i].Items.Equal(wantFC[i].Items) || gotFC[i].Support != wantFC[i].Support {
			t.Fatalf("FC[%d]: got %v/%d, want %v/%d",
				i, gotFC[i].Items, gotFC[i].Support, wantFC[i].Items, wantFC[i].Support)
		}
	}
	ctx := context.Background()
	for _, name := range []string{"duquenne-guigues", "luxenburger"} {
		got, err := inc.Basis(ctx, name, WithMinConfidence(0.5))
		if err != nil {
			t.Fatalf("incremental %s basis: %v", name, err)
		}
		want, err := full.Basis(ctx, name, WithMinConfidence(0.5))
		if err != nil {
			t.Fatalf("full %s basis: %v", name, err)
		}
		g := FormatRules(got.Rules, inc.Dataset())
		w := FormatRules(want.Rules, full.Dataset())
		if g != w {
			t.Fatalf("%s basis differs\n got:\n%s\nwant:\n%s", name, g, w)
		}
	}
}

// TestUpdateAppendCorrelated repeats the equivalence check in the
// correlated (mushroom-like) regime.
func TestUpdateAppendCorrelated(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(42))
	d := testgen.Correlated(r, 50, 4, 3, 0.25)
	raw := make([][]int, d.NumTransactions())
	for i := range raw {
		raw[i] = d.Transaction(i)
	}
	opts := []MineOption{WithMinSupport(0.2)}
	base, err := NewDataset(raw[:30])
	if err != nil {
		t.Fatal(err)
	}
	res, err := MineContext(ctx, base, opts...)
	if err != nil {
		t.Fatal(err)
	}
	appended, err := NewDataset(raw[30:])
	if err != nil {
		t.Fatal(err)
	}
	inc, err := UpdateAppend(ctx, res, appended, opts...)
	if err != nil {
		t.Fatal(err)
	}
	full, err := MineContext(ctx, d, opts...)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEquivalent(t, inc, full)
	if inc.MinerName() != "incremental" {
		t.Errorf("MinerName = %q, want incremental", inc.MinerName())
	}
	if inc.TracksGenerators() {
		t.Error("incremental result claims generators")
	}
}

// TestUpdateAppendRefusals covers the ErrIncremental cases.
func TestUpdateAppendRefusals(t *testing.T) {
	ctx := context.Background()
	base, err := NewDataset([][]int{{0, 1}, {0}, {1}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MineContext(ctx, base, WithAbsoluteMinSupport(2))
	if err != nil {
		t.Fatal(err)
	}
	delta, err := NewDataset([][]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	empty, err := NewDataset(nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		prev  *Result
		delta *Dataset
		opts  []MineOption
	}{
		{"nil prev", nil, delta, []MineOption{WithAbsoluteMinSupport(2)}},
		{"nil delta", res, nil, []MineOption{WithAbsoluteMinSupport(2)}},
		{"empty delta", res, empty, []MineOption{WithAbsoluteMinSupport(2)}},
		{"lowered threshold", res, delta, []MineOption{WithAbsoluteMinSupport(1)}},
	}
	for _, tc := range cases {
		_, err := UpdateAppend(ctx, tc.prev, tc.delta, tc.opts...)
		if !errors.Is(err, ErrIncremental) {
			t.Errorf("%s: err = %v, want ErrIncremental", tc.name, err)
		}
	}
	// Missing threshold is an option error, not an ErrIncremental.
	if _, err := UpdateAppend(ctx, res, delta); err == nil {
		t.Error("UpdateAppend without threshold accepted")
	}
	// Cancellation passes through unwrapped.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := UpdateAppend(cctx, res, delta, WithAbsoluteMinSupport(2)); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled UpdateAppend err = %v, want context.Canceled", err)
	}
}

// TestUpdateAppendSwap runs an incremental result through the
// QueryService swap path that the refresher uses.
func TestUpdateAppendSwap(t *testing.T) {
	ctx := context.Background()
	base, err := NewDataset([][]int{{0, 1, 2}, {0, 2}, {1, 2}, {0, 1, 2}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MineContext(ctx, base, WithMinSupport(0.3))
	if err != nil {
		t.Fatal(err)
	}
	qs, err := NewQueryService(res, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if qs.ServedResult() != res {
		t.Fatal("ServedResult != initial result")
	}
	delta, err := NewDataset([][]int{{0, 1, 2}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := UpdateAppend(ctx, qs.ServedResult(), delta, WithMinSupport(0.3))
	if err != nil {
		t.Fatal(err)
	}
	if err := qs.Swap(inc); err != nil {
		t.Fatalf("Swap(incremental): %v", err)
	}
	if qs.ServedResult() != inc {
		t.Fatal("ServedResult not updated by Swap")
	}
	if got := qs.NumTransactions(); got != 7 {
		t.Fatalf("NumTransactions = %d, want 7", got)
	}
}
