package closedrules

import (
	"fmt"
	"io"
	"sync"

	"closedrules/internal/closedset"
	"closedrules/internal/core"
	"closedrules/internal/lattice"
)

// ClosedCollection wraps a set of frequent closed itemsets for
// analysis detached from the original transaction data — the "mine
// once, analyze later" workflow. Everything FC determines is
// available: supports and closures of arbitrary frequent itemsets, the
// iceberg lattice, the Luxenburger bases and (when the collection
// carries generators) the generic and informative bases. The
// Duquenne–Guigues basis is not available here: its pseudo-closed
// antecedents quantify over all frequent itemsets, which requires the
// expansion of FC (use Mine + Result when the data is at hand).
type ClosedCollection struct {
	set   *closedset.Set
	numTx int

	latOnce sync.Once
	lat     *lattice.Lattice
}

// NewClosedCollection builds a collection from closed itemsets, e.g.
// the output of LoadClosedItemsets. The collection must be a complete
// mining result (with its bottom element); |O| is recovered from the
// bottom's support.
func NewClosedCollection(items []ClosedItemset) (*ClosedCollection, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("closedrules: empty collection")
	}
	s := closedset.FromSlice(items)
	bot, ok := s.Bottom()
	if !ok {
		return nil, fmt.Errorf("closedrules: collection has no bottom element (incomplete FC)")
	}
	return &ClosedCollection{set: s, numTx: bot.Support}, nil
}

// ReadClosedCollection loads a collection saved by
// Result.SaveClosedItemsets.
func ReadClosedCollection(r io.Reader) (*ClosedCollection, error) {
	items, err := LoadClosedItemsets(r)
	if err != nil {
		return nil, err
	}
	return NewClosedCollection(items)
}

// Len returns |FC|.
func (c *ClosedCollection) Len() int { return c.set.Len() }

// HasGenerators reports whether every closed itemset in the collection
// carries at least one minimal generator — true when the collection
// was saved from a generator-tracking mining run (close, a-close,
// titanic, genclose). The generic and informative bases require it.
func (c *ClosedCollection) HasGenerators() bool { return c.set.HasGenerators() }

// NumTransactions returns |O| (the bottom element's support).
func (c *ClosedCollection) NumTransactions() int { return c.numTx }

// ClosedItemsets returns the collection in canonical order.
func (c *ClosedCollection) ClosedItemsets() []ClosedItemset { return c.set.All() }

// Closure returns h(X); ok is false when X is not frequent at the
// collection's threshold.
func (c *ClosedCollection) Closure(x Itemset) (ClosedItemset, bool) { return c.set.ClosureOf(x) }

// Support returns supp(X) = supp(h(X)).
func (c *ClosedCollection) Support(x Itemset) (int, bool) { return c.set.SupportOf(x) }

func (c *ClosedCollection) latticeOf() *lattice.Lattice {
	c.latOnce.Do(func() {
		c.lat = lattice.Build(c.set)
	})
	return c.lat
}

// LuxenburgerReduction returns the reduced Luxenburger basis of the
// collection at the given confidence.
func (c *ClosedCollection) LuxenburgerReduction(minConf float64) ([]Rule, error) {
	return core.LuxenburgerReduction(c.latticeOf(), c.set, core.LuxenburgerOptions{
		MinConfidence: minConf,
	})
}

// LuxenburgerFull returns the unreduced Luxenburger basis.
func (c *ClosedCollection) LuxenburgerFull(minConf float64) ([]Rule, error) {
	return core.LuxenburgerFull(c.set, core.LuxenburgerOptions{MinConfidence: minConf})
}

// GenericBasis returns the generic (minimal-generator) basis for exact
// rules; it requires the collection to carry generators.
func (c *ClosedCollection) GenericBasis() ([]Rule, error) {
	return core.GenericBasis(c.set)
}

// InformativeBasis returns the informative basis for approximate
// rules; reduced restricts consequents to lattice covers.
func (c *ClosedCollection) InformativeBasis(minConf float64, reduced bool) ([]Rule, error) {
	return core.InformativeBasis(c.latticeOf(), c.set, reduced, core.LuxenburgerOptions{
		MinConfidence: minConf,
	})
}

// LatticeDOT renders the collection's iceberg lattice in Graphviz
// format.
func (c *ClosedCollection) LatticeDOT(names []string) string {
	return c.latticeOf().DOT(names)
}
