// Package closedrules mines bases for association rules using frequent
// closed itemsets, implementing Taouil, Pasquier, Bastide & Lakhal,
// "Mining Bases for Association Rules Using Closed Sets" (ICDE 2000).
//
// An itemset is closed when it equals its Galois closure h(X) — the
// largest itemset shared by exactly the transactions containing X —
// and every itemset has the support of its closure. The frequent
// closed itemsets (FC) therefore condense all frequent itemsets
// without losing a single support value. Instead of the full — hugely
// redundant — set of association rules, the library extracts two
// minimal non-redundant generating sets built on FC:
//
//   - the Duquenne–Guigues basis for exact rules (confidence 1): one
//     rule P → h(P)∖P per frequent pseudo-closed itemset P (Theorem 1).
//     It is minimal — no smaller set generates all exact rules.
//   - the Luxenburger basis for approximate rules (confidence < 1):
//     one rule h₁ → h₂∖h₁ per pair of comparable frequent closed
//     itemsets h₁ ⊂ h₂, with confidence supp(h₂)/supp(h₁); the served
//     reduction keeps only the Hasse-diagram (cover) edges of the
//     iceberg lattice (Theorem 2).
//
// Every valid rule, with its exact support and confidence, can be
// rederived from the two bases alone: exact rules by composing
// Duquenne–Guigues antecedents, approximate ones by multiplying
// confidences along lattice paths. Engine implements that derivation,
// QueryService serves it concurrently, and the server package exposes
// it over HTTP/JSON.
//
// Quick start:
//
//	ds, _ := closedrules.NewDataset([][]int{{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4}})
//	res, _ := closedrules.MineContext(ctx, ds,
//		closedrules.WithMinSupport(0.4),
//		closedrules.WithAlgorithm("titanic"))
//	exact, _ := res.Basis(ctx, "duquenne-guigues")
//	approx, _ := res.Basis(ctx, "luxenburger", closedrules.WithMinConfidence(0.5))
//	for _, r := range exact.Rules { fmt.Println(r) }
//	for _, r := range approx.Rules { fmt.Println(r) }
//
// Both the mining algorithm and the basis construction are selected by
// registry name. ClosedMiners and FrequentMiners list the available
// miners, and RegisterClosedMiner / RegisterFrequentMiner plug in new
// implementations; Bases lists the available rule bases
// (duquenne-guigues, luxenburger, generic, informative) and
// RegisterBasis plugs in new constructions — both without touching
// this package. The context is honored mid-mine: a deadline or cancel
// aborts the run within one level (level-wise miners) or one branch
// extension (depth-first miners).
//
// To serve rule queries at scale, wrap a Result in a QueryService:
//
//	qs, _ := closedrules.NewQueryService(res, 0.5)
//	recs, _ := qs.Recommend(ctx, closedrules.Items(1), 3)
//
// QueryService is safe for concurrent use and supports hot reload via
// Swap when fresh data has been re-mined.
package closedrules

import (
	"io"
	"strings"

	"closedrules/internal/closedset"
	"closedrules/internal/dataset"
	"closedrules/internal/itemset"
	"closedrules/internal/rules"
)

// Dataset is a transaction database over dense integer items.
type Dataset = dataset.Dataset

// Stats summarizes a dataset.
type Stats = dataset.Stats

// Itemset is a sorted set of item identifiers.
type Itemset = itemset.Itemset

// CountedItemset is an itemset with its absolute support.
type CountedItemset = itemset.Counted

// ClosedItemset is a frequent closed itemset with support and minimal
// generators.
type ClosedItemset = closedset.Closed

// Rule is an association rule with measured supports.
type Rule = rules.Rule

// Metrics carries the interestingness measures of a rule.
type Metrics = rules.Metrics

// Items builds an Itemset from the given items.
func Items(items ...int) Itemset { return itemset.Of(items...) }

// NewDataset builds a dataset from raw transactions; items are
// non-negative integers, transactions are deduplicated and sorted.
func NewDataset(transactions [][]int) (*Dataset, error) {
	return dataset.FromTransactions(transactions)
}

// NewDatasetWithUniverse builds a dataset with an explicit item
// universe size.
func NewDatasetWithUniverse(transactions [][]int, numItems int) (*Dataset, error) {
	return dataset.FromTransactionsN(transactions, numItems)
}

// ReadDat parses the FIMI ".dat" basket format (one transaction per
// line, space-separated item ids).
func ReadDat(r io.Reader) (*Dataset, error) { return dataset.ReadDat(r) }

// ReadDatFile reads a ".dat" file from disk.
func ReadDatFile(path string) (*Dataset, error) { return dataset.ReadDatFile(path) }

// WriteDat writes the dataset in ".dat" format.
func WriteDat(w io.Writer, d *Dataset) error { return dataset.WriteDat(w, d) }

// ReadTable parses a delimiter-separated nominal table; each
// (column, value) pair becomes an item named "column=value".
func ReadTable(r io.Reader, sep rune, hasHeader bool) (*Dataset, error) {
	return dataset.ReadTable(r, sep, hasHeader)
}

// ReadTableFile reads a nominal table from disk.
func ReadTableFile(path string, sep rune, hasHeader bool) (*Dataset, error) {
	return dataset.ReadTableFile(path, sep, hasHeader)
}

// FormatRules renders rules one per line using the dataset's item
// names.
func FormatRules(list []Rule, d *Dataset) string {
	var names []string
	if d != nil {
		names = d.Names()
	}
	var b strings.Builder
	for _, r := range list {
		b.WriteString(r.Format(names))
		b.WriteByte('\n')
	}
	return b.String()
}

// RuleMetrics computes the interestingness measures of a rule against
// a database of numTx transactions.
func RuleMetrics(r Rule, numTx int) (Metrics, error) {
	return rules.ComputeMetrics(r, numTx)
}
