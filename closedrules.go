// Package closedrules mines bases for association rules using frequent
// closed itemsets, implementing Taouil, Pasquier, Bastide & Lakhal,
// "Mining Bases for Association Rules Using Closed Sets" (ICDE 2000).
//
// Instead of the full — hugely redundant — set of association rules,
// the library extracts two minimal non-redundant generating sets:
//
//   - the Duquenne–Guigues basis for exact rules (confidence 1), built
//     on the frequent pseudo-closed itemsets (Theorem 1);
//   - the Luxenburger basis for approximate rules, built on the Hasse
//     diagram of the frequent-closed-itemset (iceberg) lattice
//     (Theorem 2).
//
// Every valid rule, with its exact support and confidence, can be
// rederived from the two bases alone; Engine implements that
// derivation.
//
// Quick start:
//
//	ds, _ := closedrules.NewDataset([][]int{{0, 2, 3}, {1, 2, 4}, {0, 1, 2, 4}, {1, 4}, {0, 1, 2, 4}})
//	res, _ := closedrules.Mine(ds, closedrules.Options{MinSupport: 0.4})
//	bases, _ := res.Bases(0.5)
//	for _, r := range bases.Exact { fmt.Println(r) }
//	for _, r := range bases.Approximate { fmt.Println(r) }
package closedrules

import (
	"fmt"
	"io"

	"closedrules/internal/aclose"
	"closedrules/internal/apriori"
	"closedrules/internal/charm"
	"closedrules/internal/closealg"
	"closedrules/internal/closedset"
	"closedrules/internal/dataset"
	"closedrules/internal/eclat"
	"closedrules/internal/fpgrowth"
	"closedrules/internal/itemset"
	"closedrules/internal/pascal"
	"closedrules/internal/rules"
	"closedrules/internal/titanic"
)

// Dataset is a transaction database over dense integer items.
type Dataset = dataset.Dataset

// Stats summarizes a dataset.
type Stats = dataset.Stats

// Itemset is a sorted set of item identifiers.
type Itemset = itemset.Itemset

// CountedItemset is an itemset with its absolute support.
type CountedItemset = itemset.Counted

// ClosedItemset is a frequent closed itemset with support and minimal
// generators.
type ClosedItemset = closedset.Closed

// Rule is an association rule with measured supports.
type Rule = rules.Rule

// Metrics carries the interestingness measures of a rule.
type Metrics = rules.Metrics

// Items builds an Itemset from the given items.
func Items(items ...int) Itemset { return itemset.Of(items...) }

// NewDataset builds a dataset from raw transactions; items are
// non-negative integers, transactions are deduplicated and sorted.
func NewDataset(transactions [][]int) (*Dataset, error) {
	return dataset.FromTransactions(transactions)
}

// NewDatasetWithUniverse builds a dataset with an explicit item
// universe size.
func NewDatasetWithUniverse(transactions [][]int, numItems int) (*Dataset, error) {
	return dataset.FromTransactionsN(transactions, numItems)
}

// ReadDat parses the FIMI ".dat" basket format (one transaction per
// line, space-separated item ids).
func ReadDat(r io.Reader) (*Dataset, error) { return dataset.ReadDat(r) }

// ReadDatFile reads a ".dat" file from disk.
func ReadDatFile(path string) (*Dataset, error) { return dataset.ReadDatFile(path) }

// WriteDat writes the dataset in ".dat" format.
func WriteDat(w io.Writer, d *Dataset) error { return dataset.WriteDat(w, d) }

// ReadTable parses a delimiter-separated nominal table; each
// (column, value) pair becomes an item named "column=value".
func ReadTable(r io.Reader, sep rune, hasHeader bool) (*Dataset, error) {
	return dataset.ReadTable(r, sep, hasHeader)
}

// ReadTableFile reads a nominal table from disk.
func ReadTableFile(path string, sep rune, hasHeader bool) (*Dataset, error) {
	return dataset.ReadTableFile(path, sep, hasHeader)
}

// Algorithm selects the mining algorithm.
type Algorithm int

const (
	// Close is the level-wise closed-itemset miner of reference [4]
	// (default). Tracks minimal generators.
	Close Algorithm = iota
	// AClose is the generator-first closed miner of reference [5].
	// Tracks minimal generators.
	AClose
	// Charm is the depth-first closed miner (Zaki & Hsiao 2002),
	// included as a follow-on cross-check. Does not track generators.
	Charm
	// Titanic is the key-based miner of the same research group
	// (Stumme et al. 2002): closures are computed from support counts
	// alone, with no extra database pass. Tracks minimal generators.
	Titanic
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case Close:
		return "close"
	case AClose:
		return "a-close"
	case Charm:
		return "charm"
	case Titanic:
		return "titanic"
	}
	return fmt.Sprintf("algorithm(%d)", int(a))
}

// Options configures Mine.
type Options struct {
	// MinSupport is the relative minimum support in (0, 1]; ignored
	// when AbsoluteMinSupport is set.
	MinSupport float64
	// AbsoluteMinSupport, when ≥ 1, is the minimum support count.
	AbsoluteMinSupport int
	// Algorithm chooses the closed-itemset miner (default Close).
	Algorithm Algorithm
}

func (o Options) minSup(d *Dataset) (int, error) {
	if o.AbsoluteMinSupport >= 1 {
		if o.AbsoluteMinSupport > d.NumTransactions() && d.NumTransactions() > 0 {
			return o.AbsoluteMinSupport, nil // legal: empty result
		}
		return o.AbsoluteMinSupport, nil
	}
	if o.MinSupport <= 0 || o.MinSupport > 1 {
		return 0, fmt.Errorf("closedrules: MinSupport %v outside (0,1] and no absolute threshold", o.MinSupport)
	}
	return d.AbsoluteSupport(o.MinSupport), nil
}

// Mine extracts the frequent closed itemsets of the dataset and
// returns a Result from which itemsets, rules and bases are derived.
func Mine(d *Dataset, opt Options) (*Result, error) {
	minSup, err := opt.minSup(d)
	if err != nil {
		return nil, err
	}
	var fc *closedset.Set
	switch opt.Algorithm {
	case Close:
		fc, _, err = closealg.Mine(d, minSup)
	case AClose:
		fc, _, err = aclose.Mine(d, minSup)
	case Charm:
		fc, err = charm.Mine(d, minSup)
	case Titanic:
		fc, _, err = titanic.Mine(d, minSup)
	default:
		return nil, fmt.Errorf("closedrules: unknown algorithm %v", opt.Algorithm)
	}
	if err != nil {
		return nil, err
	}
	return &Result{d: d, minSup: minSup, algo: opt.Algorithm, fc: fc}, nil
}

// MineFrequent extracts all frequent itemsets (the Apriori baseline —
// exactly what the bases make unnecessary, provided for comparisons).
func MineFrequent(d *Dataset, opt Options) ([]CountedItemset, error) {
	minSup, err := opt.minSup(d)
	if err != nil {
		return nil, err
	}
	fam, _, err := apriori.Mine(d, minSup)
	if err != nil {
		return nil, err
	}
	return fam.All(), nil
}

// MineFrequentEclat extracts all frequent itemsets with the vertical
// Eclat miner.
func MineFrequentEclat(d *Dataset, opt Options) ([]CountedItemset, error) {
	minSup, err := opt.minSup(d)
	if err != nil {
		return nil, err
	}
	fam, err := eclat.Mine(d, minSup)
	if err != nil {
		return nil, err
	}
	return fam.All(), nil
}

// MineFrequentFPGrowth extracts all frequent itemsets with the
// FP-Growth miner (prefix-tree compression, no candidate generation).
func MineFrequentFPGrowth(d *Dataset, opt Options) ([]CountedItemset, error) {
	minSup, err := opt.minSup(d)
	if err != nil {
		return nil, err
	}
	fam, err := fpgrowth.Mine(d, minSup)
	if err != nil {
		return nil, err
	}
	return fam.All(), nil
}

// MineFrequentPascal extracts all frequent itemsets with the PASCAL
// miner (key-pattern counting inference — the same group's Apriori
// refinement; fastest on correlated data).
func MineFrequentPascal(d *Dataset, opt Options) ([]CountedItemset, error) {
	minSup, err := opt.minSup(d)
	if err != nil {
		return nil, err
	}
	fam, _, err := pascal.Mine(d, minSup)
	if err != nil {
		return nil, err
	}
	return fam.All(), nil
}

// FormatRules renders rules one per line using the dataset's item
// names.
func FormatRules(list []Rule, d *Dataset) string {
	var names []string
	if d != nil {
		names = d.Names()
	}
	out := ""
	for _, r := range list {
		out += r.Format(names) + "\n"
	}
	return out
}

// RuleMetrics computes the interestingness measures of a rule against
// a database of numTx transactions.
func RuleMetrics(r Rule, numTx int) (Metrics, error) {
	return rules.ComputeMetrics(r, numTx)
}
